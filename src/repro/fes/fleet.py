"""Fleets: many vehicles federated through one trusted server.

Used by the OTA-deployment experiments: build N copies of the example
vehicle on one simulator, deploy an APP to all of them, and observe the
per-vehicle completion times on the shared server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fes.example_platform import make_example_vehicle_spec
from repro.fes.vehicle import Vehicle, VehicleSpec, build_vehicle
from repro.network.channel import CELLULAR, ChannelProfile
from repro.network.sockets import NetworkFabric
from repro.server.models import InstallStatus
from repro.server.server import TrustedServer
from repro.sim.kernel import Simulator
from repro.sim.random import StreamFactory
from repro.sim.tracing import Tracer


@dataclass
class Fleet:
    """N vehicles + one trusted server on one simulator."""

    sim: Simulator
    tracer: Tracer
    fabric: NetworkFabric
    server: TrustedServer
    vehicles: list[Vehicle]
    user_id: str = "fleet-admin"

    def boot(self) -> None:
        for vehicle in self.vehicles:
            vehicle.boot()

    def run(self, duration_us: int) -> None:
        self.boot()
        self.sim.run_for(duration_us)

    def deploy_everywhere(self, app_name: str) -> list:
        """Request installation of ``app_name`` on every vehicle."""
        return [
            self.server.web.deploy(self.user_id, vehicle.vin, app_name)
            for vehicle in self.vehicles
        ]

    def active_count(self, app_name: str) -> int:
        """Vehicles on which ``app_name`` is fully installed and acked."""
        count = 0
        for vehicle in self.vehicles:
            status = self.server.web.installation_status(vehicle.vin, app_name)
            if status is InstallStatus.ACTIVE:
                count += 1
        return count

    def run_until_active(
        self, app_name: str, timeout_us: int, step_us: int = 50_000
    ) -> int:
        """Advance time until all installs acked; returns elapsed us."""
        self.boot()
        start = self.sim.now
        while self.sim.now - start < timeout_us:
            self.sim.run_for(step_us)
            if self.active_count(app_name) == len(self.vehicles):
                return self.sim.now - start
        return -1


def build_fleet(
    size: int,
    seed: int = 0,
    spec_factory: Optional[Callable[[str, str], VehicleSpec]] = None,
    cellular_profile: Optional[ChannelProfile] = None,
    trace: bool = False,
) -> Fleet:
    """Build ``size`` example vehicles registered on one server."""
    sim = Simulator()
    tracer = Tracer(enabled=trace)
    fabric = NetworkFabric(
        sim, StreamFactory(seed), tracer=tracer,
        default_profile=cellular_profile or CELLULAR,
    )
    address = "trusted-server.oem.example:7000"
    server = TrustedServer(fabric, address)
    factory = spec_factory or (
        lambda vin, addr: make_example_vehicle_spec(vin, server_address=addr)
    )
    fleet = Fleet(sim, tracer, fabric, server, [])
    server.web.create_user(fleet.user_id, "Fleet Admin")
    for index in range(size):
        vin = f"VIN-{index:04d}"
        spec = factory(vin, address)
        vehicle = build_vehicle(spec, fabric, sim=sim, tracer=tracer)
        fleet.vehicles.append(vehicle)
        hw, system_sw = spec.describe_for_server()
        server.web.register_vehicle(vin, spec.model, hw, system_sw)
        server.web.bind_vehicle(fleet.user_id, vin)
    return fleet


__all__ = ["Fleet", "build_fleet"]
