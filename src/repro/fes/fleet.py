"""Fleets: many vehicles federated through one trusted server.

Used by the OTA-deployment experiments: declare N vehicles (identical
or heterogeneous — mixed ECU counts and models are fine) on one
simulator, deploy an APP to all of them, and track the per-vehicle
completion through the returned
:class:`~repro.api.deployment.Deployment` handle.

Built on :class:`~repro.api.ScenarioBuilder`; :func:`build_fleet` keeps
the historical convenience signature (size + optional spec factory).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.api.builder import ScenarioBuilder
from repro.api.platform import Platform
from repro.campaign.spec import CampaignSpec, HealthPolicy, PercentageWaves
from repro.fes.example_platform import make_example_vehicle_spec
from repro.fes.statistical import StatisticalModel
from repro.fes.vehicle import VehicleSpec
from repro.network.channel import ChannelProfile
from repro.server.server import DEFAULT_ADDRESS


class Fleet(Platform):
    """N vehicles + one trusted server on one simulator.

    ``run()`` boots lazily and exactly once (the ``_booted`` guard in
    :class:`Platform`), so repeated ``run()`` calls never re-boot
    already-running vehicles.  Staged rollouts ride on the inherited
    :meth:`~repro.api.platform.Platform.run_campaign`; see
    :func:`canary_campaign` for the canonical spec shape.
    """

    def run(self, duration_us: int) -> None:
        self.boot()
        self.sim.run_for(duration_us)


def canary_campaign(
    app_name: str,
    fractions: tuple[float, ...] = (0.05, 0.25, 1.0),
    max_failure_rate: float = 0.1,
    max_timeout_rate: float = 0.1,
    **overrides,
) -> CampaignSpec:
    """The canonical staged-rollout spec for a fleet.

    A canary wave covering the first fraction, progressively larger
    waves after it, and a shared health gate.  Extra keyword arguments
    forward to :class:`~repro.campaign.spec.CampaignSpec` (retry
    budget, rollback policy, timeouts, ...).
    """
    return CampaignSpec(
        app_name=app_name,
        waves=PercentageWaves(tuple(fractions)),
        health=HealthPolicy(
            max_failure_rate=max_failure_rate,
            max_timeout_rate=max_timeout_rate,
        ),
        **overrides,
    )


def build_fleet(
    size: int,
    seed: int = 0,
    spec_factory: Optional[Callable[[str, str], VehicleSpec]] = None,
    cellular_profile: Optional[ChannelProfile] = None,
    trace: bool = False,
    regions: Optional[Sequence[str]] = None,
    full_vehicles: Optional[int] = None,
    statistical_model: Optional[StatisticalModel] = None,
) -> Fleet:
    """Build ``size`` example vehicles registered on one server.

    ``spec_factory(vin, server_address)`` may return a different
    :class:`VehicleSpec` per VIN, so one fleet can mix vehicle models
    and ECU counts.  ``regions`` assigns deployment regions round-robin
    (e.g. ``("eu-north", "na-east")``) so FleetSelector queries and
    selector-based campaign waves have attributes to shard on.

    ``full_vehicles`` makes the fleet multi-fidelity: the first that
    many VINs get the complete ECU/VM simulation while the rest are
    :class:`~repro.fes.statistical.StatisticalVehicle` members driven
    by ``statistical_model``.  VINs are zero-padded and campaign waves
    partition in VIN order, so the full-fidelity prefix IS the canary
    wave of a :func:`canary_campaign` — the health and soak gates judge
    real plug-in behaviour while the bulk fleet scales to 100k VINs.
    ``None`` (the default) keeps every vehicle full-fidelity.
    """
    factory = spec_factory or (
        lambda vin, addr: make_example_vehicle_spec(vin, server_address=addr)
    )
    scenario = ScenarioBuilder(
        seed=seed,
        server_address=DEFAULT_ADDRESS,
        default_profile=cellular_profile,
        trace=trace,
    )
    if statistical_model is not None:
        scenario.statistical_model(statistical_model)
    # 100k-vehicle campaigns need stable VIN ordering for wave
    # partitioning; widen the zero padding only when 4 digits overflow
    # so existing fleets (and their seeded stream paths) are unchanged.
    digits = max(4, len(str(max(size - 1, 0))))
    scenario.user("fleet-admin", "Fleet Admin")
    for index in range(size):
        spec = factory(f"VIN-{index:0{digits}d}", DEFAULT_ADDRESS)
        if regions:
            spec.region = regions[index % len(regions)]
        if full_vehicles is not None and index >= full_vehicles:
            spec.fidelity = "statistical"
        scenario.add_vehicle_spec(spec)
    return scenario.build(platform_cls=Fleet)


def build_fleet_from_specs(
    specs: Iterable[VehicleSpec],
    seed: int = 0,
    cellular_profile: Optional[ChannelProfile] = None,
    trace: bool = False,
) -> Fleet:
    """Build a (possibly heterogeneous) fleet from explicit specs."""
    scenario = ScenarioBuilder(
        seed=seed,
        server_address=DEFAULT_ADDRESS,
        default_profile=cellular_profile,
        trace=trace,
    )
    scenario.user("fleet-admin", "Fleet Admin")
    for spec in specs:
        scenario.add_vehicle_spec(spec)
    return scenario.build(platform_cls=Fleet)


__all__ = [
    "Fleet",
    "build_fleet",
    "build_fleet_from_specs",
    "canary_campaign",
]
