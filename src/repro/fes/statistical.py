"""Statistical vehicle model: calibrated low-fidelity fleet members.

A full :class:`~repro.fes.vehicle.Vehicle` simulates every ECU tick —
alarms, scheduler dispatches, VM instruction execution — which costs
thousands of kernel events per vehicle per simulated second.  That
fidelity matters for the canary wave, where the campaign's health and
soak gates must see real plug-in behaviour; it is wasted on the other
99% of a 100k-vehicle fleet, whose only observable contribution to a
campaign is *when* the acks come back and *whether* they are positive.

:class:`StatisticalVehicle` replaces the ECU/VM substrate with seeded
draws from a :class:`StatisticalModel` (ack latency, jitter, failure
rates), calibrated against the full simulation via
:func:`calibrate_model`.  It speaks the real management protocol over
the real simulated network — the trusted server cannot tell the
difference — so campaign engines, health gates, pusher accounting, and
telemetry soak windows all work unchanged on mixed-fidelity fleets.

Determinism: each vehicle draws from the fabric's stream
``statvehicle:<VIN>``; stream paths are isolated (see
:mod:`repro.sim.random`), so adding statistical vehicles to a scenario
never perturbs the draws of the full-simulation vehicles, and the same
seed replays byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import messages as msg
from repro.errors import ConfigurationError
from repro.fes.vehicle import VehicleSpec
from repro.network.sockets import Endpoint, NetworkFabric
from repro.sim.kernel import MS, Simulator

#: Stream-path prefix for per-vehicle draws.
STREAM_PREFIX = "statvehicle"


@dataclass(frozen=True)
class StatisticalModel:
    """Response-time and outcome distributions of one vehicle class.

    ``ack_latency_us`` is the mean vehicle-side processing time between
    receiving a management message and handing the ack to the uplink
    (link latency is NOT included — the simulated channel still adds
    its own delays, so channel profiles and fault plans keep working).
    ``ack_jitter_us`` spreads it uniformly.  The failure rates are
    per-message Bernoulli draws producing negative acknowledgements.
    ``memory_blocks_per_plugin`` feeds the diagnostic reports the soak
    gate reads; ``activation_rate_hz`` makes reported activation
    counters grow with simulated time like a real dispatch loop's.
    """

    ack_latency_us: int = 120 * MS
    ack_jitter_us: int = 40 * MS
    install_failure_rate: float = 0.0
    uninstall_failure_rate: float = 0.0
    memory_blocks_per_plugin: int = 4
    activation_rate_hz: int = 100

    def __post_init__(self) -> None:
        if self.ack_latency_us < 0 or self.ack_jitter_us < 0:
            raise ConfigurationError(
                "statistical latency and jitter must be >= 0"
            )
        for rate in (self.install_failure_rate, self.uninstall_failure_rate):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"failure rates must be in [0, 1] (got {rate})"
                )


class StatisticalVehicle:
    """A fleet member that answers the server statistically.

    Protocol-compatible with :class:`~repro.fes.vehicle.Vehicle` where
    the platform and campaign layers touch vehicles: ``vin``, ``spec``,
    ``sim``, ``boot()``, ``run()``, and ``emit_diagnostics()`` (the
    soak path).  ``pirte_of`` raises — there is no PIRTE to introspect,
    which the campaign engine's baseline capture already tolerates.
    """

    fidelity = "statistical"

    def __init__(
        self,
        spec: VehicleSpec,
        fabric: NetworkFabric,
        sim: Simulator,
        model: Optional[StatisticalModel] = None,
    ) -> None:
        self.spec = spec
        self.fabric = fabric
        self._sim = sim
        self.model = model or StatisticalModel()
        self._stream = fabric.streams.stream(f"{STREAM_PREFIX}:{spec.vin}")
        self._endpoint: Optional[Endpoint] = None
        self._outbox: list[bytes] = []
        #: plugin name -> (target_swc, target_ecu) of confirmed installs.
        self.installed: dict[str, tuple[str, str]] = {}
        self.acks_sent = 0
        self.messages_received = 0
        self.nacks_sent = 0
        self._booted = False

    # -- platform-facing surface --------------------------------------------

    @property
    def vin(self) -> str:
        return self.spec.vin

    @property
    def sim(self) -> Simulator:
        return self._sim

    def pirte_of(self, swc_instance: str):
        raise ConfigurationError(
            f"vehicle {self.vin} is statistical-fidelity; it has no PIRTE "
            f"for SW-C {swc_instance!r}"
        )

    def boot(self) -> None:
        """Dial the trusted server (idempotent, like a real boot)."""
        if self._booted:
            return
        self._booted = True
        self.fabric.connect(
            self.spec.server_address, self.vin, self._on_connected
        )

    def run(self, duration_us: int) -> None:
        self.boot()
        self._sim.run_for(duration_us)

    # -- connectivity --------------------------------------------------------

    def _on_connected(self, endpoint: Endpoint) -> None:
        self._endpoint = endpoint
        endpoint.on_receive(self._on_message)
        while self._outbox:
            raw = self._outbox.pop(0)
            endpoint.send(raw, size=len(raw))

    def _send_upstream(self, raw: bytes) -> None:
        if self._endpoint is None or self._endpoint.closed:
            # Offline (never connected, or the link was severed by a
            # fault): buffer like the real ECM's server outbox does.
            self._endpoint = None
            self._outbox.append(raw)
            return
        self._endpoint.send(raw, size=len(raw))

    # -- protocol ------------------------------------------------------------

    def _on_message(self, raw: bytes) -> None:
        self.messages_received += 1
        message = msg.decode(raw)
        if isinstance(message, msg.InstallMessage):
            self._handle_install(message)
        elif isinstance(message, msg.UninstallMessage):
            self._handle_uninstall(message)
        elif isinstance(message, msg.LifecycleMessage):
            self._reply(
                msg.AckMessage(
                    message.plugin_name, message.target_swc,
                    message.op, msg.AckStatus.OK,
                )
            )
        # DataMessages have no statistical observable; drop them.

    def _handle_install(self, message: msg.InstallMessage) -> None:
        if self._stream.chance(self.model.install_failure_rate):
            self._reply(
                msg.AckMessage(
                    message.plugin_name, message.target_swc,
                    msg.MessageType.INSTALL, msg.AckStatus.BAD_PACKAGE,
                    "statistical install failure",
                )
            )
            return
        self.installed[message.plugin_name] = (
            message.target_swc, message.target_ecu
        )
        self._reply(
            msg.AckMessage(
                message.plugin_name, message.target_swc,
                msg.MessageType.INSTALL, msg.AckStatus.OK,
            )
        )

    def _handle_uninstall(self, message: msg.UninstallMessage) -> None:
        if message.plugin_name not in self.installed:
            self._reply(
                msg.AckMessage(
                    message.plugin_name, message.target_swc,
                    msg.MessageType.UNINSTALL, msg.AckStatus.UNKNOWN_PLUGIN,
                    f"plug-in {message.plugin_name} is not installed",
                )
            )
            return
        if self._stream.chance(self.model.uninstall_failure_rate):
            self._reply(
                msg.AckMessage(
                    message.plugin_name, message.target_swc,
                    msg.MessageType.UNINSTALL, msg.AckStatus.LIFECYCLE_ERROR,
                    "statistical uninstall failure",
                )
            )
            return
        del self.installed[message.plugin_name]
        self._reply(
            msg.AckMessage(
                message.plugin_name, message.target_swc,
                msg.MessageType.UNINSTALL, msg.AckStatus.OK,
            )
        )

    def _reply(self, ack: msg.AckMessage) -> None:
        """Send ``ack`` after the drawn vehicle-side processing time."""
        raw = ack.encode()
        delay = self._stream.jitter(
            self.model.ack_latency_us, self.model.ack_jitter_us
        )
        if ack.ok:
            self.acks_sent += 1
        else:
            self.nacks_sent += 1
        self._sim.schedule(
            delay,
            lambda: self._send_upstream(raw),
            f"statvehicle:{self.vin}:ack",
        )

    # -- telemetry ------------------------------------------------------------

    def emit_diagnostics(self) -> None:
        """Send one healthy DiagMessage per plug-in-hosting SW-C.

        Mirrors the full PIRTE's report shape so the campaign soak gate
        evaluates mixed fleets with one code path: zero traps, activation
        counters growing at ``activation_rate_hz``, and memory usage
        proportional to the confirmed plug-in population.
        """
        by_swc: dict[str, list[str]] = {}
        for plugin_name, (swc, __) in self.installed.items():
            by_swc.setdefault(swc, []).append(plugin_name)
        activations = (self._sim.now * self.model.activation_rate_hz) // 1_000_000
        for placement in self.spec.all_placements():
            plugins = sorted(by_swc.get(placement.instance_name, ()))
            used = len(plugins) * self.model.memory_blocks_per_plugin
            report = msg.DiagMessage(
                source_ecu=placement.ecu_name,
                source_swc=placement.instance_name,
                memory_used_blocks=used,
                memory_free_blocks=max(
                    0, placement.spec.vm_memory_blocks - used
                ),
                plugins=tuple(
                    msg.PluginHealth(
                        plugin_name=name,
                        state="running",
                        activations=activations,
                        traps=0,
                        fuel_used=0,
                    )
                    for name in plugins
                ),
            )
            self._send_upstream(report.encode())


def calibrate_model(
    fleet_size: int = 3,
    seed: int = 0,
    settle_us: int = 30 * 1_000_000,
    **overrides,
) -> StatisticalModel:
    """Fit a :class:`StatisticalModel` against the full simulation.

    Builds a small full-fidelity fleet, deploys the paper's
    remote-control APP to every vehicle, and measures the server-side
    time from dispatch to each install resolving.  The mean becomes
    ``ack_latency_us`` and half the observed spread ``ack_jitter_us``.
    The sample includes the channel's round trip, which the statistical
    vehicle pays again on its own link — the fit is a slight
    overestimate, conservative for campaign-duration experiments.
    Keyword ``overrides`` replace fitted or default fields on the
    result.
    """
    from repro.fes.example_platform import make_remote_control_app
    from repro.fes.fleet import build_fleet

    fleet = build_fleet(fleet_size, seed=seed)
    app = make_remote_control_app()
    fleet.api.store.upload(app).unwrap()
    fleet.run(1_000_000)  # ECMs dial in
    resolved: list[int] = []
    start = fleet.sim.now

    def on_event(event) -> None:
        if event.kind == "install_resolved":
            resolved.append(fleet.sim.now - start)

    fleet.api.deployments.add_listener(on_event)
    try:
        fleet.deploy(app.name)
        deadline = fleet.sim.now + settle_us
        while len(resolved) < fleet_size and fleet.sim.now < deadline:
            if not fleet.sim.step():
                break
    finally:
        fleet.api.deployments.remove_listener(on_event)
    if not resolved:
        return StatisticalModel(**overrides)
    mean = sum(resolved) // len(resolved)
    spread = (max(resolved) - min(resolved)) // 2
    fitted = {
        "ack_latency_us": mean,
        "ack_jitter_us": spread,
    }
    fitted.update(overrides)
    return StatisticalModel(**fitted)


__all__ = [
    "StatisticalModel",
    "StatisticalVehicle",
    "calibrate_model",
    "STREAM_PREFIX",
]
