"""The paper's example application platform (Sec. 4, Fig. 3).

A model car with two ECUs: ECU1 carries the ECM SW-C (PIRTE1), ECU2 a
plug-in SW-C (PIRTE2) exposing virtual ports toward the car's motion
hardware.  The remote-control APP consists of two plug-ins:

* **COM** on the ECM: listens to the smart phone ('Wheels'/'Speed'
  messages arrive on its unconnected ports P0/P1 via the ECC) and
  forwards formatted values through the type II pair to OP
  (PLC ``{P0-, P1-, P2-V0.P0, P3-V0.P1}``, as printed in the paper).
* **OP** on ECU2: receives the commands and writes them to the basic
  software through service virtual ports V4 (WheelsReq) and V5
  (SpeedReq); V6 (SpeedProv) is provisioned but unused, exactly as in
  the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.autosar.events import DataReceivedEvent
from repro.autosar.interfaces import DataElement, SenderReceiverInterface
from repro.autosar.ports import provided_port, required_port
from repro.autosar.runnable import Runnable
from repro.autosar.swc import ComponentType
from repro.autosar.types import INT16
from repro.core.plugin_swc import PluginSwcSpec, RelayLink, ServicePort
from repro.fes.phone import Smartphone
from repro.fes.vehicle import (
    LegacyComponent,
    PluginSwcPlacement,
    Vehicle,
    VehicleSpec,
    build_vehicle,
)
from repro.network.channel import CELLULAR, WIFI, ChannelProfile
from repro.network.sockets import NetworkFabric
from repro.server.models import (
    App,
    ConnectionKind,
    ConnectionSpec,
    ExternalSpec,
    PluginDescriptor,
    SwConf,
)
from repro.server.server import TrustedServer
from repro.sim.kernel import Simulator
from repro.sim.random import StreamFactory
from repro.sim.tracing import Tracer
from repro.vm.loader import compile_plugin

MODEL = "model-car-rpi"
PHONE_ADDRESS = "111.22.33.44:56789"

#: COM plug-in: phone commands in on P0/P1, formatted out on P2/P3.
COM_SOURCE = """
.entry on_message
    ; stack: [port, value]
    STORE 1         ; value
    STORE 0         ; port
    LOAD 0
    JZ wheels
    LOAD 1
    WRPORT 3        ; speed -> P3
    HALT
wheels:
    LOAD 1
    WRPORT 2        ; wheels -> P2
    HALT
"""

#: OP plug-in: commands in on P0/P1, actuator writes out on P2/P3.
OP_SOURCE = """
.entry on_message
    STORE 1
    STORE 0
    LOAD 0
    JZ wheels
    LOAD 1
    WRPORT 3        ; speed -> P3 (-> V5 SpeedReq)
    HALT
wheels:
    LOAD 1
    WRPORT 2        ; wheels -> P2 (-> V4 WheelsReq)
    HALT
"""

MOTION_IF = SenderReceiverInterface(
    "MotionIf", [DataElement("value", INT16, queued=True, queue_length=32)]
)


def make_car_actuators_type() -> ComponentType:
    """Legacy component: the car's wheel/speed actuators (BSW facade)."""

    def on_wheels(instance):
        while instance.pending("wheels_in", "value"):
            instance.state.setdefault("wheels", []).append(
                instance.receive("wheels_in", "value")
            )

    def on_speed(instance):
        while instance.pending("speed_in", "value"):
            instance.state.setdefault("speed", []).append(
                instance.receive("speed_in", "value")
            )

    return ComponentType(
        "CarActuators",
        ports=[
            required_port("wheels_in", MOTION_IF),
            required_port("speed_in", MOTION_IF),
            provided_port("speed_out", MOTION_IF),
        ],
        runnables=[
            Runnable("on_wheels", on_wheels, execution_time_us=15),
            Runnable("on_speed", on_speed, execution_time_us=15),
        ],
        events=[
            DataReceivedEvent("on_wheels", port="wheels_in", element="value"),
            DataReceivedEvent("on_speed", port="speed_in", element="value"),
        ],
    )


def _clamp_int16(value: int) -> int:
    return max(-32768, min(32767, value))


def make_example_vehicle_spec(
    vin: str = "VIN-0001",
    server_address: str = "trusted-server.oem.example:7000",
) -> VehicleSpec:
    """The Fig. 3 vehicle: ECM on ECU1, plug-in SW-C on ECU2."""
    ecm_spec = PluginSwcSpec(
        "EcmSwc",
        relays=[RelayLink(peer="swc2", out_virtual="V0", in_virtual="V1")],
        has_mgmt=False,
    )
    swc2_spec = PluginSwcSpec(
        "PluginSwc2",
        relays=[RelayLink(peer="swc1", out_virtual="V2", in_virtual="V3")],
        services=[
            ServicePort(
                "V4", "wheels_req", "out", INT16, to_wire=_clamp_int16
            ),
            ServicePort(
                "V5", "speed_req", "out", INT16, to_wire=_clamp_int16
            ),
            ServicePort("V6", "speed_prov", "in", INT16),
        ],
    )
    return VehicleSpec(
        vin=vin,
        model=MODEL,
        ecus=["ECU1", "ECU2"],
        ecm=PluginSwcPlacement("swc1", "ECU1", ecm_spec),
        plugin_swcs=[PluginSwcPlacement("swc2", "ECU2", swc2_spec)],
        legacy=[
            LegacyComponent("actuators", make_car_actuators_type(), "ECU2"),
        ],
        connectors=[
            ("swc2", "wheels_req", "actuators", "wheels_in"),
            ("swc2", "speed_req", "actuators", "speed_in"),
            ("actuators", "speed_out", "swc2", "speed_prov"),
        ],
        server_address=server_address,
    )


def make_remote_control_app(
    phone_address: str = PHONE_ADDRESS, version: str = "1.0"
) -> App:
    """The two-plug-in remote-control APP with its deployment descriptor."""
    com = PluginDescriptor(
        "COM",
        compile_plugin(COM_SOURCE, mem_hint=8).raw,
        ("cmd_wheels", "cmd_speed", "out_wheels", "out_speed"),
    )
    op = PluginDescriptor(
        "OP",
        compile_plugin(OP_SOURCE, mem_hint=8).raw,
        ("in_wheels", "in_speed", "act_wheels", "act_speed"),
    )
    conf = SwConf(
        model=MODEL,
        placements=(("COM", "swc1"), ("OP", "swc2")),
        connections=(
            ConnectionSpec(ConnectionKind.UNCONNECTED, "COM", "cmd_wheels"),
            ConnectionSpec(ConnectionKind.UNCONNECTED, "COM", "cmd_speed"),
            ConnectionSpec(
                ConnectionKind.PLUGIN, "COM", "out_wheels",
                target_plugin="OP", target_port="in_wheels",
            ),
            ConnectionSpec(
                ConnectionKind.PLUGIN, "COM", "out_speed",
                target_plugin="OP", target_port="in_speed",
            ),
            ConnectionSpec(
                ConnectionKind.VIRTUAL, "OP", "act_wheels",
                target_virtual="V4",
            ),
            ConnectionSpec(
                ConnectionKind.VIRTUAL, "OP", "act_speed",
                target_virtual="V5",
            ),
        ),
        externals=(
            ExternalSpec(phone_address, "Wheels", "COM", "cmd_wheels"),
            ExternalSpec(phone_address, "Speed", "COM", "cmd_speed"),
        ),
    )
    return App(
        name="remote-control",
        version=version,
        plugins={"COM": com, "OP": op},
        sw_confs=[conf],
    )


@dataclass
class ExamplePlatform:
    """The full Fig. 3 federated system, assembled and bootable."""

    sim: Simulator
    tracer: Tracer
    fabric: NetworkFabric
    server: TrustedServer
    phone: Smartphone
    vehicle: Vehicle
    user_id: str = "user-1"

    def boot(self) -> None:
        """Boot the vehicle and let the ECM connect to the server."""
        self.vehicle.boot()

    def run(self, duration_us: int) -> None:
        self.vehicle.run(duration_us)

    def deploy_remote_control(self):
        """Trigger the install through the server's web services."""
        return self.server.web.deploy(
            self.user_id, self.vehicle.vin, "remote-control"
        )

    def actuator_state(self) -> dict:
        return self.vehicle.system.instance("actuators").state


def build_example_platform(
    seed: int = 0,
    phone_address: str = PHONE_ADDRESS,
    cellular_profile: Optional[ChannelProfile] = None,
    trace: bool = True,
) -> ExamplePlatform:
    """Build the complete demonstrator: server + phone + vehicle."""
    sim = Simulator()
    tracer = Tracer(enabled=trace)
    fabric = NetworkFabric(sim, StreamFactory(seed), tracer=tracer)
    server_address = "trusted-server.oem.example:7000"
    # The server listens on the cellular profile; the phone on Wi-Fi.
    fabric.default_profile = cellular_profile or CELLULAR
    server = TrustedServer(fabric, server_address)
    phone = Smartphone(fabric, phone_address, sim)
    fabric.set_listener_profile(phone_address, WIFI)
    spec = make_example_vehicle_spec(server_address=server_address)
    vehicle = build_vehicle(spec, fabric, sim=sim, tracer=tracer)
    platform = ExamplePlatform(sim, tracer, fabric, server, phone, vehicle)
    # OEM + user setup on the server.
    hw, system_sw = spec.describe_for_server()
    server.web.register_vehicle(spec.vin, spec.model, hw, system_sw)
    server.web.create_user(platform.user_id, "Example User")
    server.web.bind_vehicle(platform.user_id, spec.vin)
    server.web.upload_app(make_remote_control_app(phone_address))
    return platform


__all__ = [
    "MODEL",
    "PHONE_ADDRESS",
    "COM_SOURCE",
    "OP_SOURCE",
    "make_car_actuators_type",
    "make_example_vehicle_spec",
    "make_remote_control_app",
    "ExamplePlatform",
    "build_example_platform",
]
