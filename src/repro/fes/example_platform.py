"""The paper's example application platform (Sec. 4, Fig. 3).

A model car with two ECUs: ECU1 carries the ECM SW-C (PIRTE1), ECU2 a
plug-in SW-C (PIRTE2) exposing virtual ports toward the car's motion
hardware.  The remote-control APP consists of two plug-ins:

* **COM** on the ECM: listens to the smart phone ('Wheels'/'Speed'
  messages arrive on its unconnected ports P0/P1 via the ECC) and
  forwards formatted values through the type II pair to OP
  (PLC ``{P0-, P1-, P2-V0.P0, P3-V0.P1}``, as printed in the paper).
* **OP** on ECU2: receives the commands and writes them to the basic
  software through service virtual ports V4 (WheelsReq) and V5
  (SpeedReq); V6 (SpeedProv) is provisioned but unused, exactly as in
  the paper.

Since the introduction of :mod:`repro.api`, this module is a thin
declaration on top of :class:`~repro.api.ScenarioBuilder` — the car is
~40 lines of declarative spec rather than hand assembly, and the same
builder composes arbitrary other vehicles and fleets.
"""

from __future__ import annotations

from typing import Optional

from repro.api.builder import AppBuilder, ScenarioBuilder, VehicleBuilder
from repro.api.platform import Platform
from repro.autosar.events import DataReceivedEvent
from repro.autosar.interfaces import DataElement, SenderReceiverInterface
from repro.autosar.ports import provided_port, required_port
from repro.autosar.runnable import Runnable
from repro.autosar.swc import ComponentType
from repro.autosar.types import INT16
from repro.core.plugin_swc import RelayLink, ServicePort
from repro.fes.vehicle import VehicleSpec
from repro.network.channel import WIFI, ChannelProfile
from repro.server.models import App
from repro.server.server import DEFAULT_ADDRESS

MODEL = "model-car-rpi"
PHONE_ADDRESS = "111.22.33.44:56789"

#: COM plug-in: phone commands in on P0/P1, formatted out on P2/P3.
COM_SOURCE = """
.entry on_message
    ; stack: [port, value]
    STORE 1         ; value
    STORE 0         ; port
    LOAD 0
    JZ wheels
    LOAD 1
    WRPORT 3        ; speed -> P3
    HALT
wheels:
    LOAD 1
    WRPORT 2        ; wheels -> P2
    HALT
"""

#: OP plug-in: commands in on P0/P1, actuator writes out on P2/P3.
OP_SOURCE = """
.entry on_message
    STORE 1
    STORE 0
    LOAD 0
    JZ wheels
    LOAD 1
    WRPORT 3        ; speed -> P3 (-> V5 SpeedReq)
    HALT
wheels:
    LOAD 1
    WRPORT 2        ; wheels -> P2 (-> V4 WheelsReq)
    HALT
"""

MOTION_IF = SenderReceiverInterface(
    "MotionIf", [DataElement("value", INT16, queued=True, queue_length=32)]
)


def make_car_actuators_type() -> ComponentType:
    """Legacy component: the car's wheel/speed actuators (BSW facade)."""

    def on_wheels(instance):
        while instance.pending("wheels_in", "value"):
            instance.state.setdefault("wheels", []).append(
                instance.receive("wheels_in", "value")
            )

    def on_speed(instance):
        while instance.pending("speed_in", "value"):
            instance.state.setdefault("speed", []).append(
                instance.receive("speed_in", "value")
            )

    return ComponentType(
        "CarActuators",
        ports=[
            required_port("wheels_in", MOTION_IF),
            required_port("speed_in", MOTION_IF),
            provided_port("speed_out", MOTION_IF),
        ],
        runnables=[
            Runnable("on_wheels", on_wheels, execution_time_us=15),
            Runnable("on_speed", on_speed, execution_time_us=15),
        ],
        events=[
            DataReceivedEvent("on_wheels", port="wheels_in", element="value"),
            DataReceivedEvent("on_speed", port="speed_in", element="value"),
        ],
    )


def _clamp_int16(value: int) -> int:
    return max(-32768, min(32767, value))


def declare_example_vehicle(
    builder: VehicleBuilder,
) -> VehicleBuilder:
    """The Fig. 3 car as a declaration: ECM on ECU1, plug-in SW-C on ECU2."""
    builder.ecus("ECU1", "ECU2")
    builder.ecm(
        "swc1", on="ECU1", type_name="EcmSwc",
        relays=[RelayLink(peer="swc2", out_virtual="V0", in_virtual="V1")],
    )
    builder.plugin_swc(
        "swc2", on="ECU2", type_name="PluginSwc2",
        relays=[RelayLink(peer="swc1", out_virtual="V2", in_virtual="V3")],
        services=[
            ServicePort("V4", "wheels_req", "out", INT16, to_wire=_clamp_int16),
            ServicePort("V5", "speed_req", "out", INT16, to_wire=_clamp_int16),
            ServicePort("V6", "speed_prov", "in", INT16),
        ],
    )
    builder.legacy("actuators", make_car_actuators_type(), on="ECU2")
    builder.connect("swc2", "wheels_req", "actuators", "wheels_in")
    builder.connect("swc2", "speed_req", "actuators", "speed_in")
    builder.connect("actuators", "speed_out", "swc2", "speed_prov")
    return builder


def make_example_vehicle_spec(
    vin: str = "VIN-0001",
    server_address: str = DEFAULT_ADDRESS,
) -> VehicleSpec:
    """The Fig. 3 vehicle spec, produced through the declarative builder."""
    scenario = ScenarioBuilder(server_address=server_address)
    return declare_example_vehicle(scenario.vehicle(vin, MODEL)).to_spec()


def declare_remote_control_app(
    builder: AppBuilder, phone_address: str = PHONE_ADDRESS
) -> AppBuilder:
    """The two-plug-in remote-control APP as a declaration."""
    builder.plugin(
        "COM", source=COM_SOURCE, mem_hint=8, on="swc1",
        ports=("cmd_wheels", "cmd_speed", "out_wheels", "out_speed"),
    )
    builder.plugin(
        "OP", source=OP_SOURCE, mem_hint=8, on="swc2",
        ports=("in_wheels", "in_speed", "act_wheels", "act_speed"),
    )
    builder.unconnected("COM", "cmd_wheels")
    builder.unconnected("COM", "cmd_speed")
    builder.wire("COM", "out_wheels", "OP", "in_wheels")
    builder.wire("COM", "out_speed", "OP", "in_speed")
    builder.virtual("OP", "act_wheels", "V4")
    builder.virtual("OP", "act_speed", "V5")
    builder.external(phone_address, "Wheels", "COM", "cmd_wheels")
    builder.external(phone_address, "Speed", "COM", "cmd_speed")
    return builder


def make_remote_control_app(
    phone_address: str = PHONE_ADDRESS, version: str = "1.0"
) -> App:
    """The remote-control APP with its deployment descriptor."""
    builder = AppBuilder(None, "remote-control", MODEL, version)
    return declare_remote_control_app(builder, phone_address).to_app()


class ExamplePlatform(Platform):
    """The full Fig. 3 federated system, assembled and bootable.

    A single-vehicle :class:`~repro.api.Platform`: ``vehicle()`` and
    ``phone()`` (no arguments) return the one car and the one phone.
    """

    def deploy_remote_control(self):
        """Trigger the install through the fleet control plane."""
        return self.api.deployments.deploy(
            self.user_id, self.vehicle().vin, "remote-control"
        )


def build_example_platform(
    seed: int = 0,
    phone_address: str = PHONE_ADDRESS,
    cellular_profile: Optional[ChannelProfile] = None,
    trace: bool = True,
) -> ExamplePlatform:
    """Build the complete demonstrator: server + phone + vehicle.

    Thin wrapper over :class:`~repro.api.ScenarioBuilder`.
    """
    scenario = ScenarioBuilder(
        seed=seed, default_profile=cellular_profile, trace=trace
    )
    scenario.server(DEFAULT_ADDRESS)
    scenario.user("user-1", "Example User")
    scenario.phone(phone_address, WIFI)
    declare_example_vehicle(scenario.vehicle("VIN-0001", MODEL))
    declare_remote_control_app(
        scenario.app("remote-control", MODEL), phone_address
    )
    return scenario.build(platform_cls=ExamplePlatform)


__all__ = [
    "MODEL",
    "PHONE_ADDRESS",
    "COM_SOURCE",
    "OP_SOURCE",
    "make_car_actuators_type",
    "declare_example_vehicle",
    "make_example_vehicle_spec",
    "declare_remote_control_app",
    "make_remote_control_app",
    "ExamplePlatform",
    "build_example_platform",
]
