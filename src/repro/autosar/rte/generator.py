"""The "RTE generator": builds a runtime system from a description.

This mirrors the AUTOSAR methodology step where tooling processes the
description files into executable BSW + RTE + ASW for each ECU: the
:class:`SystemBuilder` instantiates ECUs, components, and OS tasks,
allocates COM signal/PDU/CAN identifiers for every cross-ECU connector
element, and turns RTE events into alarms and delivery hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.autosar.ecu import Ecu
from repro.autosar.events import (
    DataReceivedEvent,
    InitEvent,
    OperationInvokedEvent,
    TimingEvent,
)
from repro.autosar.bsw.com import SignalConfig
from repro.autosar.interfaces import SenderReceiverInterface
from repro.autosar.os.task import Task, WorkItem
from repro.autosar.rte.rte import ComRoute, LocalRoute, ServerRoute
from repro.autosar.swc import ComponentInstance
from repro.autosar.system import SystemDescription
from repro.can.bus import CanBus
from repro.can.frame import MAX_STD_ID
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.tracing import Tracer

#: First CAN identifier handed to generated signals.  Identifiers below
#: this are reserved for built-in, manually configured traffic.
CAN_ID_BASE = 0x100


@dataclass
class BuiltSystem:
    """The runtime artefacts produced by :class:`SystemBuilder`."""

    description: SystemDescription
    sim: Simulator
    ecus: dict[str, Ecu]
    bus: Optional[CanBus]
    tracer: Optional[Tracer]
    signal_allocation: dict[tuple[str, str, str, str, str], int] = field(
        default_factory=dict
    )

    def ecu(self, name: str) -> Ecu:
        """Look up a built ECU."""
        try:
            return self.ecus[name]
        except KeyError:
            raise ConfigurationError(f"no ECU named {name!r}") from None

    def instance(self, name: str) -> ComponentInstance:
        """Find a component instance on whichever ECU holds it."""
        placement = self.description.placement(name)
        return self.ecu(placement.ecu_name).instance(name)

    def boot_all(self) -> None:
        """Boot every ECU (idempotent)."""
        for ecu in self.ecus.values():
            ecu.boot()

    def run(self, duration_us: int) -> None:
        """Boot if necessary and advance simulated time."""
        self.boot_all()
        self.sim.run_for(duration_us)


class SystemBuilder:
    """Generates the runtime system for a :class:`SystemDescription`."""

    def __init__(
        self,
        description: SystemDescription,
        sim: Optional[Simulator] = None,
        tracer: "Optional[Tracer]" = ...,  # type: ignore[assignment]
    ) -> None:
        self.description = description
        self.sim = sim or Simulator()
        # Ellipsis (the omitted-argument default) auto-creates a tracer;
        # an explicit None builds a system with tracing compiled out —
        # every ``if self.tracer:`` guard in the OS/RTE/CAN hot paths
        # then short-circuits at C speed instead of calling emit().
        self.tracer = Tracer() if tracer is ... else tracer
        self._next_pdu = 0

    def build(self) -> BuiltSystem:
        """Validate the description and construct the runtime system."""
        description = self.description
        description.validate()
        bus = self._build_bus()
        ecus = self._build_ecus(bus)
        built = BuiltSystem(description, self.sim, ecus, bus, self.tracer)
        self._instantiate_components(built)
        self._wire_sr_routes(built)
        self._wire_cs_routes(built)
        self._install_events(built)
        return built

    def _build_bus(self) -> Optional[CanBus]:
        if any(e.on_bus for e in self.description.ecus.values()):
            return CanBus(
                self.sim,
                "can0",
                bitrate=self.description.can_bitrate,
                tracer=self.tracer,
            )
        return None

    def _build_ecus(self, bus: Optional[CanBus]) -> dict[str, Ecu]:
        ecus: dict[str, Ecu] = {}
        for desc in self.description.ecus.values():
            ecu = Ecu(
                desc.name,
                self.sim,
                self.tracer,
                memory_block_size=desc.memory_block_size,
                memory_block_count=desc.memory_block_count,
            )
            if desc.on_bus:
                assert bus is not None
                ecu.attach_bus(bus)
            ecus[desc.name] = ecu
        return ecus

    def _instantiate_components(self, built: BuiltSystem) -> None:
        for placement in self.description.placements.values():
            ecu = built.ecu(placement.ecu_name)
            instance = placement.ctype.instantiate(placement.instance_name)
            task = Task(
                placement.task.task_name,
                placement.task.priority,
                placement.task.preemptable,
            )
            ecu.add_instance(instance, task)
            # Register the component author's operation handlers.
            for (port, op), handler in placement.ctype.operation_handlers.items():
                ecu.rte.register_operation_handler(
                    instance.name, port, op, handler
                )

    def _allocate_signal(self) -> tuple[int, int]:
        """Allocate a fresh (signal_id, can_id) pair."""
        pdu_id = self._next_pdu
        self._next_pdu += 1
        can_id = CAN_ID_BASE + pdu_id
        if can_id > MAX_STD_ID:
            raise ConfigurationError(
                "CAN identifier space exhausted: too many cross-ECU "
                "connector elements"
            )
        return pdu_id, can_id

    def _wire_sr_routes(self, built: BuiltSystem) -> None:
        description = self.description
        for connector in description.connectors:
            from_place = description.placement(connector.from_instance)
            proto = from_place.ctype.port(connector.from_port)
            if not proto.is_sender_receiver:
                continue
            iface = proto.interface
            assert isinstance(iface, SenderReceiverInterface)
            src_ecu = built.ecu(from_place.ecu_name)
            if not description.is_cross_ecu(connector):
                for element in iface.elements:
                    src_ecu.rte.add_sr_route(
                        connector.from_instance,
                        connector.from_port,
                        element.name,
                        LocalRoute(connector.to_instance, connector.to_port),
                    )
                continue
            to_place = description.placement(connector.to_instance)
            dst_ecu = built.ecu(to_place.ecu_name)
            if src_ecu.com is None or dst_ecu.com is None:
                raise ConfigurationError(
                    f"cross-ECU connector {connector} needs both ECUs on "
                    f"the bus"
                )
            for element in iface.elements:
                signal_id, can_id = self._allocate_signal()
                built.signal_allocation[
                    (
                        connector.from_instance,
                        connector.from_port,
                        connector.to_instance,
                        connector.to_port,
                        element.name,
                    )
                ] = signal_id
                config = SignalConfig(
                    name=(
                        f"{connector.from_instance}_{connector.from_port}_"
                        f"{element.name}"
                    ),
                    signal_id=signal_id,
                    dtype=element.dtype,
                    pdu_id=signal_id,
                )
                src_ecu.com.configure_tx_signal(config)
                src_ecu.canif.configure_tx(signal_id, can_id)  # type: ignore[union-attr]
                dst_ecu.com.configure_rx_signal(config)
                dst_ecu.canif.configure_rx(can_id, signal_id)  # type: ignore[union-attr]
                src_ecu.rte.add_sr_route(
                    connector.from_instance,
                    connector.from_port,
                    element.name,
                    ComRoute(signal_id),
                )
                dst_ecu.com.subscribe(
                    signal_id,
                    self._make_remote_delivery(
                        dst_ecu,
                        connector.to_instance,
                        connector.to_port,
                        element.name,
                    ),
                )

    @staticmethod
    def _make_remote_delivery(ecu: Ecu, instance: str, port: str, element: str):
        def deliver(value) -> None:
            ecu.rte.deliver_local(instance, port, element, value)

        return deliver

    def _wire_cs_routes(self, built: BuiltSystem) -> None:
        description = self.description
        for connector in description.connectors:
            from_place = description.placement(connector.from_instance)
            proto = from_place.ctype.port(connector.from_port)
            if proto.is_sender_receiver:
                continue
            # validate() already rejected cross-ECU C/S connectors.
            ecu = built.ecu(from_place.ecu_name)
            iface = proto.interface
            for operation in iface.operations:  # type: ignore[union-attr]
                ecu.rte.add_cs_route(
                    connector.from_instance,
                    connector.from_port,
                    operation.name,
                    ServerRoute(connector.to_instance, connector.to_port),
                )

    def _install_events(self, built: BuiltSystem) -> None:
        for placement in self.description.placements.values():
            ecu = built.ecu(placement.ecu_name)
            instance = ecu.instance(placement.instance_name)
            task = ecu.task_for(placement.instance_name)
            for event in placement.ctype.events:
                if isinstance(event, TimingEvent):
                    self._install_timing_event(ecu, instance, task, event)
                elif isinstance(event, DataReceivedEvent):
                    self._install_data_event(ecu, instance, task, event)
                elif isinstance(event, InitEvent):
                    self._install_init_event(ecu, instance, task, event)
                elif isinstance(event, OperationInvokedEvent):
                    # Operation-invoked runnables execute synchronously
                    # through the registered handler; nothing to install.
                    continue

    @staticmethod
    def _activation_item(
        instance: ComponentInstance, runnable_name: str
    ) -> WorkItem:
        """Build the work item for one runnable activation.

        The item is immutable once built (preemption clones rather than
        mutating), so event installers construct it once and re-enqueue
        the same object every period — a periodic runnable would
        otherwise allocate a WorkItem, a label string, and a closure on
        every tick of every vehicle.
        """
        runnable = instance.ctype.runnable(runnable_name)
        return WorkItem(
            label=f"{instance.name}.{runnable_name}",
            duration_us=runnable.execution_time_us,
            action=lambda: runnable.run(instance),
        )

    def _install_timing_event(
        self,
        ecu: Ecu,
        instance: ComponentInstance,
        task: Task,
        event: TimingEvent,
    ) -> None:
        item = self._activation_item(instance, event.runnable)
        alarm = ecu.alarms.create(
            f"{instance.name}.{event.runnable}.timer",
            lambda: ecu.cpu.activate(task, item),
        )
        ecu.at_boot(
            lambda a=alarm, e=event: a.set_relative(e.offset_us, e.period_us)
        )

    def _install_data_event(
        self,
        ecu: Ecu,
        instance: ComponentInstance,
        task: Task,
        event: DataReceivedEvent,
    ) -> None:
        item = self._activation_item(instance, event.runnable)
        ecu.rte.add_delivery_hook(
            instance.name,
            event.port,
            event.element,
            lambda: ecu.cpu.activate(task, item),
        )

    def _install_init_event(
        self,
        ecu: Ecu,
        instance: ComponentInstance,
        task: Task,
        event: InitEvent,
    ) -> None:
        item = self._activation_item(instance, event.runnable)
        ecu.at_boot(lambda: ecu.cpu.activate(task, item))


def build_system(
    description: SystemDescription,
    sim: Optional[Simulator] = None,
    tracer: "Optional[Tracer]" = ...,  # type: ignore[assignment]
) -> BuiltSystem:
    """One-call convenience wrapper around :class:`SystemBuilder`.

    Omitting ``tracer`` auto-creates one; passing ``None`` explicitly
    disables tracing entirely (the fast path for large fleets).
    """
    return SystemBuilder(description, sim, tracer).build()


__all__ = ["SystemBuilder", "BuiltSystem", "build_system", "CAN_ID_BASE"]
