"""Runtime environment: routing runtime plus the system generator.

Imports are lazy (PEP 562) because :mod:`repro.autosar.ecu` imports the
RTE runtime while the generator imports the ECU — eager package imports
would form a cycle.
"""

from typing import Any

_EXPORTS = {
    "CAN_ID_BASE": "repro.autosar.rte.generator",
    "BuiltSystem": "repro.autosar.rte.generator",
    "SystemBuilder": "repro.autosar.rte.generator",
    "build_system": "repro.autosar.rte.generator",
    "ComRoute": "repro.autosar.rte.rte",
    "LocalRoute": "repro.autosar.rte.rte",
    "Rte": "repro.autosar.rte.rte",
    "ServerRoute": "repro.autosar.rte.rte",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
