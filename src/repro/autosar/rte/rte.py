"""The runtime environment: realisation of the VFB on one ECU.

The RTE holds the routing tables produced by the generator and
implements the component-facing API (``write``/``read``/``call`` via
:class:`~repro.autosar.swc.ComponentInstance`).  Local routes copy data
directly into the receiver's port buffer and fire data-received
activations through the OS; cross-ECU routes hand the encoded value to
COM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.autosar.ports import PortInstance
from repro.autosar.swc import ComponentInstance
from repro.errors import PortError, RteError
from repro.sim.kernel import Simulator
from repro.sim.tracing import Tracer


@dataclass(frozen=True)
class LocalRoute:
    """Same-ECU S/R route: deliver straight into a port buffer."""

    to_instance: str
    to_port: str


@dataclass(frozen=True)
class ComRoute:
    """Cross-ECU S/R route: transmit through a COM signal."""

    signal_id: int


@dataclass(frozen=True)
class ServerRoute:
    """Local C/S route to a server instance's operation handler."""

    server_instance: str
    server_port: str


class Rte:
    """Per-ECU runtime environment."""

    def __init__(
        self,
        ecu_name: str,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.ecu_name = ecu_name
        self.sim = sim
        self.tracer = tracer
        self.instances: dict[str, ComponentInstance] = {}
        # (instance, port, element) -> routes
        self._sr_routes: dict[tuple[str, str, str], list[Any]] = {}
        # (client_instance, client_port, operation) -> server route
        self._cs_routes: dict[tuple[str, str, str], ServerRoute] = {}
        # (server_instance, server_port, operation) -> handler
        self._cs_handlers: dict[
            tuple[str, str, str], Callable[..., Any]
        ] = {}
        # (instance, port, element) -> activation hooks
        self._delivery_hooks: dict[
            tuple[str, str, str], list[Callable[[], None]]
        ] = {}
        self._com_send: Optional[Callable[[int, Any], bool]] = None
        self.writes = 0
        self.local_deliveries = 0
        self.com_transmissions = 0
        self.calls = 0

    # -- wiring (generator-facing) ---------------------------------------

    def register_instance(self, instance: ComponentInstance) -> None:
        """Bind a component instance to this RTE."""
        if instance.name in self.instances:
            raise RteError(
                f"duplicate instance {instance.name!r} on {self.ecu_name}"
            )
        self.instances[instance.name] = instance
        instance.rte = self

    def instance(self, name: str) -> ComponentInstance:
        """Look up a bound instance."""
        try:
            return self.instances[name]
        except KeyError:
            raise RteError(
                f"RTE on {self.ecu_name} has no instance {name!r}"
            ) from None

    def add_sr_route(
        self, instance: str, port: str, element: str, route: Any
    ) -> None:
        """Install a sender-receiver route for a provided port element."""
        self._sr_routes.setdefault((instance, port, element), []).append(route)

    def add_cs_route(
        self,
        client_instance: str,
        client_port: str,
        operation: str,
        route: ServerRoute,
    ) -> None:
        """Install a client-server route."""
        key = (client_instance, client_port, operation)
        if key in self._cs_routes:
            raise RteError(f"duplicate C/S route for {key}")
        self._cs_routes[key] = route

    def register_operation_handler(
        self,
        server_instance: str,
        server_port: str,
        operation: str,
        handler: Callable[..., Any],
    ) -> None:
        """Register the server-side implementation of an operation."""
        self._cs_handlers[(server_instance, server_port, operation)] = handler

    def add_delivery_hook(
        self, instance: str, port: str, element: str, hook: Callable[[], None]
    ) -> None:
        """Run ``hook`` after each delivery to the given port element.

        The generator uses this to turn data-received events into task
        activations; the PIRTE uses it to wake the plug-in dispatcher.
        """
        self._delivery_hooks.setdefault((instance, port, element), []).append(hook)

    def set_com_sender(self, sender: Callable[[int, Any], bool]) -> None:
        """Install the COM transmit function for cross-ECU routes."""
        self._com_send = sender

    # -- component-facing API --------------------------------------------

    def write(
        self,
        instance: ComponentInstance,
        port: str,
        element: str,
        value: Any,
    ) -> None:
        """Rte_Write: fan ``value`` out to every configured route."""
        prototype = instance.ctype.port(port)
        if not prototype.is_provided or not prototype.is_sender_receiver:
            raise PortError(
                f"write needs a provided S/R port; {instance.name}.{port} "
                f"is {prototype.direction.value}"
            )
        iface = prototype.interface
        iface.element(element)  # type: ignore[union-attr]
        self.writes += 1
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "rte", "write", ecu=self.ecu_name,
                src=f"{instance.name}.{port}.{element}",
            )
        routes = self._sr_routes.get((instance.name, port, element), [])
        for route in routes:
            if isinstance(route, LocalRoute):
                self.deliver_local(route.to_instance, route.to_port, element, value)
            elif isinstance(route, ComRoute):
                if self._com_send is None:
                    raise RteError(
                        f"cross-ECU route from {instance.name}.{port} but "
                        f"ECU {self.ecu_name} has no COM stack"
                    )
                self.com_transmissions += 1
                self._com_send(route.signal_id, value)
            else:  # pragma: no cover - defensive
                raise RteError(f"unknown route type {route!r}")

    def deliver_local(
        self, to_instance: str, to_port: str, element: str, value: Any
    ) -> None:
        """Deliver a value into a local port buffer and fire hooks.

        Called both for local routes and by the generator's COM receive
        subscriptions (the last hop of a cross-ECU route).
        """
        receiver = self.instance(to_instance)
        port_instance: PortInstance = receiver.port(to_port)
        delivered = port_instance.deliver(element, value)
        if not delivered:
            if self.tracer:
                self.tracer.emit(
                    self.sim.now, "rte", "overflow", ecu=self.ecu_name,
                    dst=f"{to_instance}.{to_port}.{element}",
                )
            return
        self.local_deliveries += 1
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "rte", "deliver", ecu=self.ecu_name,
                dst=f"{to_instance}.{to_port}.{element}",
            )
        for hook in self._delivery_hooks.get(
            (to_instance, to_port, element), []
        ):
            hook()

    def call(
        self,
        instance: ComponentInstance,
        port: str,
        operation: str,
        arguments: dict[str, Any],
    ) -> Any:
        """Rte_Call: synchronous local client-server invocation.

        The server's handler executes immediately in the caller's
        context; AUTOSAR's direct invocation of a server runnable on the
        caller's task.  Cross-ECU C/S is rejected at build time.
        """
        key = (instance.name, port, operation)
        route = self._cs_routes.get(key)
        if route is None:
            raise RteError(
                f"no C/S route for {instance.name}.{port}.{operation}"
            )
        handler = self._cs_handlers.get(
            (route.server_instance, route.server_port, operation)
        )
        if handler is None:
            raise RteError(
                f"server {route.server_instance}.{route.server_port} has no "
                f"handler for operation {operation!r}"
            )
        self.calls += 1
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "rte", "call", ecu=self.ecu_name,
                op=f"{route.server_instance}.{route.server_port}.{operation}",
            )
        server = self.instance(route.server_instance)
        return handler(server, **arguments)


__all__ = ["Rte", "LocalRoute", "ComRoute", "ServerRoute"]
