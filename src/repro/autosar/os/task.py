"""OSEK-style tasks.

Tasks are containers of work items (runnable activations) executed under
fixed-priority preemptive scheduling.  Basic tasks support multiple
queued activations, as in OSEK; each activation drains the work items
queued for it at activation time.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from repro.errors import OsekError


class TaskState(enum.Enum):
    """OSEK task states."""

    SUSPENDED = "suspended"
    READY = "ready"
    RUNNING = "running"
    WAITING = "waiting"


@dataclass(slots=True)
class WorkItem:
    """One unit of CPU work queued on a task.

    ``duration_us`` is charged to the CPU; ``action`` runs when the work
    item completes (side effects become visible at completion, modelling
    results produced at the end of a runnable's execution window).
    """

    label: str
    duration_us: int
    action: Optional[Callable[[], None]] = None

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise OsekError(f"work item {self.label} has negative duration")


class Task:
    """An OSEK basic task with a FIFO work queue.

    ``priority``: larger numbers preempt smaller ones.
    ``max_activations``: pending activation limit, as in OSEK; further
    activations are dropped and counted, not errors (matching the OSEK
    E_OS_LIMIT behaviour surfaced as a status code).
    """

    def __init__(
        self,
        name: str,
        priority: int,
        preemptable: bool = True,
        max_activations: int = 8,
    ) -> None:
        if not name:
            raise OsekError("task needs a non-empty name")
        if max_activations < 1:
            raise OsekError(f"task {name} needs max_activations >= 1")
        self.name = name
        self.priority = priority
        self.preemptable = preemptable
        self.max_activations = max_activations
        self.state = TaskState.SUSPENDED
        #: Stamped by Cpu.add_task; activate() verifies it by identity.
        self.cpu: object = None
        self.queue: Deque[WorkItem] = deque()
        self.activation_count = 0
        self.dropped_activations = 0
        self.completed_items = 0
        #: Filled by the scheduler: response-time samples (us).
        self.response_times: list[int] = []
        self._activation_times: Deque[int] = deque()

    def enqueue(self, item: WorkItem) -> bool:
        """Queue a work item; returns False when the activation limit hit."""
        if len(self.queue) >= self.max_activations * 16:
            self.dropped_activations += 1
            return False
        self.queue.append(item)
        return True

    def has_work(self) -> bool:
        return bool(self.queue)

    def next_item(self) -> WorkItem:
        """Pop the next work item (scheduler use)."""
        if not self.queue:
            raise OsekError(f"task {self.name} has no queued work")
        return self.queue.popleft()

    def note_activation(self, now: int) -> None:
        """Record an activation instant for response-time accounting."""
        self.activation_count += 1
        self._activation_times.append(now)

    def note_completion(self, now: int) -> None:
        """Record a work-item completion; pairs FIFO with activations."""
        self.completed_items += 1
        if self._activation_times:
            self.response_times.append(now - self._activation_times.popleft())

    def __repr__(self) -> str:
        return f"<Task {self.name} prio={self.priority} {self.state.value}>"


__all__ = ["Task", "TaskState", "WorkItem"]
