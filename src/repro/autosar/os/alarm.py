"""OSEK counters and alarms.

Alarms drive periodic task activation: the RTE generator maps each
AUTOSAR timing event to an alarm that activates the mapped task with the
runnable's work item.  Alarms may be one-shot or cyclic, and can be
cancelled and re-set at runtime.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import OsekError
from repro.sim.kernel import EventHandle, Simulator


class Alarm:
    """A single alarm bound to an action callback."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        action: Callable[[], None],
    ) -> None:
        self.sim = sim
        self.name = name
        self.action = action
        self._handle: Optional[EventHandle] = None
        self._cycle_us = 0
        self.expirations = 0
        self.armed = False
        # Precomputed once: a cyclic alarm re-schedules every expiration,
        # and building the label f-string per tick shows up in profiles.
        self._label = f"alarm:{name}"

    def set_relative(self, offset_us: int, cycle_us: int = 0) -> None:
        """OSEK SetRelAlarm: fire after ``offset_us``; repeat every
        ``cycle_us`` when non-zero."""
        if self.armed:
            raise OsekError(f"alarm {self.name} is already armed")
        if offset_us < 0 or cycle_us < 0:
            raise OsekError(f"alarm {self.name}: negative offset or cycle")
        self._cycle_us = cycle_us
        self.armed = True
        self._handle = self.sim.schedule(offset_us, self._expire, self._label)

    def cancel(self) -> None:
        """OSEK CancelAlarm: disarm; no-op when not armed."""
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None
        self.armed = False

    def _expire(self) -> None:
        self.expirations += 1
        if self._cycle_us > 0:
            self._handle = self.sim.schedule(
                self._cycle_us, self._expire, self._label
            )
        else:
            self.armed = False
            self._handle = None
        self.action()


class AlarmManager:
    """Factory and registry of alarms on one ECU."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.alarms: dict[str, Alarm] = {}

    def create(self, name: str, action: Callable[[], None]) -> Alarm:
        """Create and register a new alarm."""
        if name in self.alarms:
            raise OsekError(f"duplicate alarm {name!r}")
        alarm = Alarm(self.sim, name, action)
        self.alarms[name] = alarm
        return alarm

    def alarm(self, name: str) -> Alarm:
        """Look up an alarm by name."""
        try:
            return self.alarms[name]
        except KeyError:
            raise OsekError(f"no alarm named {name!r}") from None

    def cancel_all(self) -> None:
        """Disarm every alarm (ECU shutdown path)."""
        for alarm in self.alarms.values():
            alarm.cancel()


__all__ = ["Alarm", "AlarmManager"]
