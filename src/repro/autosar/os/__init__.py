"""OSEK-style operating system layer: tasks, scheduler, alarms."""

from repro.autosar.os.alarm import Alarm, AlarmManager
from repro.autosar.os.scheduler import Cpu
from repro.autosar.os.task import Task, TaskState, WorkItem

__all__ = ["Alarm", "AlarmManager", "Cpu", "Task", "TaskState", "WorkItem"]
