"""Fixed-priority preemptive CPU scheduler.

One :class:`Cpu` models the single core of an ECU.  Work items queued on
tasks consume simulated CPU time; a higher-priority task activating while
a lower-priority preemptable item is in flight preempts it, and the
preempted item resumes with its remaining duration (time-slicing is
exact because the simulation clock is integral).

The scheduler is the substrate for the paper's isolation claim: plug-in
VM execution is charged to a low-priority task, so built-in control
tasks keep their response times regardless of plug-in load.
"""

from __future__ import annotations

from typing import Optional

from repro.autosar.os.task import Task, TaskState, WorkItem
from repro.errors import OsekError
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.tracing import Tracer


class Cpu:
    """Single-core fixed-priority preemptive scheduler."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "cpu0",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.tracer = tracer
        self.tasks: dict[str, Task] = {}
        #: task name -> precomputed dispatch label (built once per task;
        #: _dispatch runs for every work item on every vehicle).
        self._labels: dict[str, str] = {}
        #: Registration-order task list; _highest_ready scans it on
        #: every activation and completion, and a plain list iterates
        #: faster than dict.values().
        self._task_list: list[Task] = []
        # In-flight execution, flattened: a single core runs at most one
        # work item at a time, so its bookkeeping lives in plain fields
        # instead of a per-dispatch record (one object + one closure per
        # work item across the whole fleet showed up in profiles).
        self._current: Optional[Task] = None
        self._item: Optional[WorkItem] = None
        self._started = 0
        self._remaining = 0
        self._handle: Optional[EventHandle] = None
        self.busy_time = 0
        self.preemptions = 0
        self.dispatches = 0

    def add_task(self, task: Task) -> Task:
        """Register a task with this CPU."""
        if task.name in self.tasks:
            raise OsekError(f"duplicate task {task.name!r} on {self.name}")
        self.tasks[task.name] = task
        self._labels[task.name] = f"os:{self.name}:{task.name}"
        self._task_list.append(task)
        task.cpu = self
        return task

    def task(self, name: str) -> Task:
        """Look up a registered task."""
        try:
            return self.tasks[name]
        except KeyError:
            raise OsekError(f"{self.name} has no task {name!r}") from None

    def activate(self, task: Task, item: WorkItem) -> bool:
        """OSEK ActivateTask: queue ``item`` on ``task`` and schedule.

        Returns False when the task's queue limit dropped the activation.
        """
        # Identity check instead of a name lookup: add_task stamps the
        # task, and this runs once per work item across the whole fleet.
        if task.cpu is not self:
            raise OsekError(f"task {task.name} not registered on {self.name}")
        if not task.enqueue(item):
            return False
        task.note_activation(self.sim.now)
        if task.state is TaskState.SUSPENDED:
            task.state = TaskState.READY
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "os", "activate", cpu=self.name,
                task=task.name, item=item.label,
            )
        self._schedule_decision()
        return True

    def activate_by_name(self, task_name: str, item: WorkItem) -> bool:
        """Convenience: activate a task looked up by name."""
        return self.activate(self.task(task_name), item)

    @property
    def running_task(self) -> Optional[Task]:
        """The task currently occupying the CPU, if any."""
        return self._current

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the CPU was busy."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time / self.sim.now

    def _highest_ready(self) -> Optional[Task]:
        best: Optional[Task] = None
        # task.queue truthiness is has_work() without the method call;
        # this scan runs twice per work item across the whole fleet.
        for task in self._task_list:
            if task.queue and (best is None or task.priority > best.priority):
                best = task
        return best

    def _schedule_decision(self) -> None:
        contender = self._highest_ready()
        if contender is None:
            return
        current = self._current
        if current is None:
            self._dispatch(contender)
        elif current.preemptable and contender.priority > current.priority:
            self._preempt()
            self._dispatch(contender)

    def _dispatch(self, task: Task) -> None:
        item = task.next_item()
        task.state = TaskState.RUNNING
        self._current = task
        self._item = item
        self._started = self.sim.now
        self._remaining = item.duration_us
        self.dispatches += 1
        # _complete reads the flat fields; by the time another dispatch
        # can overwrite them, this completion has either fired or been
        # cancelled by _preempt.
        self._handle = self.sim.schedule(
            item.duration_us, self._complete, self._labels[task.name]
        )
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "os", "dispatch", cpu=self.name,
                task=task.name, item=item.label,
            )

    def _preempt(self) -> None:
        task, item = self._current, self._item
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None
        consumed = self.sim.now - self._started
        remaining = self._remaining - consumed
        self.busy_time += consumed
        self.preemptions += 1
        task.state = TaskState.READY
        # Resume at queue head so the preempted item finishes first.
        task.queue.appendleft(WorkItem(item.label, remaining, item.action))
        self._current = None
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "os", "preempt", cpu=self.name,
                task=task.name, remaining=remaining,
            )

    def _complete(self) -> None:
        self.busy_time += self._remaining
        task, item = self._current, self._item
        self._current = None
        task.note_completion(self.sim.now)
        # task.queue truthiness is has_work() without the method call.
        task.state = TaskState.READY if task.queue else TaskState.SUSPENDED
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "os", "complete", cpu=self.name,
                task=task.name, item=item.label,
            )
        # Run the side effects at completion time, then pick the next job.
        if item.action is not None:
            item.action()
        self._schedule_decision()


__all__ = ["Cpu"]
