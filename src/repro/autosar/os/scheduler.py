"""Fixed-priority preemptive CPU scheduler.

One :class:`Cpu` models the single core of an ECU.  Work items queued on
tasks consume simulated CPU time; a higher-priority task activating while
a lower-priority preemptable item is in flight preempts it, and the
preempted item resumes with its remaining duration (time-slicing is
exact because the simulation clock is integral).

The scheduler is the substrate for the paper's isolation claim: plug-in
VM execution is charged to a low-priority task, so built-in control
tasks keep their response times regardless of plug-in load.
"""

from __future__ import annotations

from typing import Optional

from repro.autosar.os.task import Task, TaskState, WorkItem
from repro.errors import OsekError
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.tracing import Tracer


class _Execution:
    """Bookkeeping for the work item currently on the CPU."""

    def __init__(self, task: Task, item: WorkItem, started: int) -> None:
        self.task = task
        self.item = item
        self.started = started
        self.remaining = item.duration_us
        self.handle: Optional[EventHandle] = None


class Cpu:
    """Single-core fixed-priority preemptive scheduler."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "cpu0",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.tracer = tracer
        self.tasks: dict[str, Task] = {}
        self._current: Optional[_Execution] = None
        self.busy_time = 0
        self.preemptions = 0
        self.dispatches = 0

    def add_task(self, task: Task) -> Task:
        """Register a task with this CPU."""
        if task.name in self.tasks:
            raise OsekError(f"duplicate task {task.name!r} on {self.name}")
        self.tasks[task.name] = task
        return task

    def task(self, name: str) -> Task:
        """Look up a registered task."""
        try:
            return self.tasks[name]
        except KeyError:
            raise OsekError(f"{self.name} has no task {name!r}") from None

    def activate(self, task: Task, item: WorkItem) -> bool:
        """OSEK ActivateTask: queue ``item`` on ``task`` and schedule.

        Returns False when the task's queue limit dropped the activation.
        """
        if task.name not in self.tasks:
            raise OsekError(f"task {task.name} not registered on {self.name}")
        if not task.enqueue(item):
            return False
        task.note_activation(self.sim.now)
        if task.state is TaskState.SUSPENDED:
            task.state = TaskState.READY
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "os", "activate", cpu=self.name,
                task=task.name, item=item.label,
            )
        self._schedule_decision()
        return True

    def activate_by_name(self, task_name: str, item: WorkItem) -> bool:
        """Convenience: activate a task looked up by name."""
        return self.activate(self.task(task_name), item)

    @property
    def running_task(self) -> Optional[Task]:
        """The task currently occupying the CPU, if any."""
        return self._current.task if self._current else None

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the CPU was busy."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time / self.sim.now

    def _highest_ready(self) -> Optional[Task]:
        best: Optional[Task] = None
        for task in self.tasks.values():
            if not task.has_work():
                continue
            if best is None or task.priority > best.priority:
                best = task
        return best

    def _schedule_decision(self) -> None:
        contender = self._highest_ready()
        if contender is None:
            return
        if self._current is None:
            self._dispatch(contender)
            return
        current = self._current
        if (
            current.task.preemptable
            and contender.priority > current.task.priority
        ):
            self._preempt(current)
            self._dispatch(contender)

    def _dispatch(self, task: Task) -> None:
        item = task.next_item()
        task.state = TaskState.RUNNING
        execution = _Execution(task, item, self.sim.now)
        self._current = execution
        self.dispatches += 1
        execution.handle = self.sim.schedule(
            execution.remaining,
            lambda: self._complete(execution),
            f"os:{self.name}:{task.name}",
        )
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "os", "dispatch", cpu=self.name,
                task=task.name, item=item.label,
            )

    def _preempt(self, execution: _Execution) -> None:
        if execution.handle is not None:
            self.sim.cancel(execution.handle)
        consumed = self.sim.now - execution.started
        execution.remaining -= consumed
        self.busy_time += consumed
        self.preemptions += 1
        execution.task.state = TaskState.READY
        # Resume at queue head so the preempted item finishes first.
        execution.task.queue.appendleft(
            WorkItem(
                execution.item.label,
                execution.remaining,
                execution.item.action,
            )
        )
        self._current = None
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "os", "preempt", cpu=self.name,
                task=execution.task.name, remaining=execution.remaining,
            )

    def _complete(self, execution: _Execution) -> None:
        self.busy_time += execution.remaining
        task = execution.task
        self._current = None
        task.note_completion(self.sim.now)
        if not task.has_work():
            task.state = TaskState.SUSPENDED
        else:
            task.state = TaskState.READY
        if self.tracer:
            self.tracer.emit(
                self.sim.now, "os", "complete", cpu=self.name,
                task=task.name, item=execution.item.label,
            )
        # Run the side effects at completion time, then pick the next job.
        if execution.item.action is not None:
            execution.item.action()
        self._schedule_decision()


__all__ = ["Cpu"]
