"""SW-C port prototypes and runtime port instances.

Design time: a :class:`PortPrototype` (provided or required) on a
component *type*, referencing a :class:`PortInterface`.

Run time: a :class:`PortInstance` on a component *instance*, holding the
receive buffers/queues that the RTE reads and fills.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from repro.autosar.interfaces import (
    ClientServerInterface,
    DataElement,
    PortInterface,
    SenderReceiverInterface,
)
from repro.errors import PortError


class PortDirection(enum.Enum):
    """Whether the component provides or requires the interface."""

    PROVIDED = "provided"
    REQUIRED = "required"


@dataclass(frozen=True)
class PortPrototype:
    """Design-time port declaration on a component type."""

    name: str
    direction: PortDirection
    interface: PortInterface

    def __post_init__(self) -> None:
        if not self.name:
            raise PortError("port needs a non-empty name")

    @property
    def is_provided(self) -> bool:
        return self.direction is PortDirection.PROVIDED

    @property
    def is_required(self) -> bool:
        return self.direction is PortDirection.REQUIRED

    @property
    def is_sender_receiver(self) -> bool:
        return isinstance(self.interface, SenderReceiverInterface)

    @property
    def is_client_server(self) -> bool:
        return isinstance(self.interface, ClientServerInterface)


class _ElementBuffer:
    """Receive-side storage for one data element of an R-port."""

    def __init__(self, element: DataElement) -> None:
        self.element = element
        self.updated = False
        if element.queued:
            self.queue: Optional[Deque[Any]] = deque(maxlen=element.queue_length)
            self.value: Any = None
        else:
            self.queue = None
            self.value = element.dtype.initial_value()

    def put(self, value: Any) -> bool:
        """Store a received value; returns False on queue overflow."""
        self.element.dtype.validate(value)
        if self.queue is not None:
            if len(self.queue) == self.queue.maxlen:
                return False
            self.queue.append(value)
        else:
            self.value = value
        self.updated = True
        return True

    def get_latest(self) -> Any:
        """Last-is-best read; clears the update flag."""
        if self.queue is not None:
            raise PortError(
                f"element {self.element.name} is queued; use receive()"
            )
        self.updated = False
        return self.value

    def receive(self) -> Any:
        """Queued read; raises :class:`PortError` when empty."""
        if self.queue is None:
            raise PortError(
                f"element {self.element.name} is last-is-best; use get_latest()"
            )
        if not self.queue:
            raise PortError(f"no data queued on element {self.element.name}")
        value = self.queue.popleft()
        self.updated = bool(self.queue)
        return value

    def pending(self) -> int:
        """Queued element count (0/1 for last-is-best update flag)."""
        if self.queue is not None:
            return len(self.queue)
        return 1 if self.updated else 0


class PortInstance:
    """Runtime port on a component instance.

    Provided sender-receiver ports have no storage (writes flow through
    the RTE); required ports hold one :class:`_ElementBuffer` per
    interface element.
    """

    def __init__(self, owner_name: str, prototype: PortPrototype) -> None:
        self.owner_name = owner_name
        self.prototype = prototype
        self._buffers: dict[str, _ElementBuffer] = {}
        if prototype.is_required and prototype.is_sender_receiver:
            iface = prototype.interface
            assert isinstance(iface, SenderReceiverInterface)
            for element in iface.elements:
                self._buffers[element.name] = _ElementBuffer(element)
        self.writes = 0
        self.reads = 0
        self.overflows = 0

    @property
    def name(self) -> str:
        return self.prototype.name

    @property
    def full_name(self) -> str:
        """Globally unique ``instance.port`` name."""
        return f"{self.owner_name}.{self.prototype.name}"

    def buffer(self, element: str) -> _ElementBuffer:
        """The receive buffer for ``element`` (required S/R ports only)."""
        try:
            return self._buffers[element]
        except KeyError:
            raise PortError(
                f"port {self.full_name} has no receive buffer for "
                f"element {element!r}"
            ) from None

    def deliver(self, element: str, value: Any) -> bool:
        """RTE-side delivery of a value into this port's buffer."""
        ok = self.buffer(element).put(value)
        if ok:
            self.writes += 1
        else:
            self.overflows += 1
        return ok

    def read_latest(self, element: str) -> Any:
        """Application-side last-is-best read."""
        self.reads += 1
        return self.buffer(element).get_latest()

    def receive(self, element: str) -> Any:
        """Application-side queued receive."""
        self.reads += 1
        return self.buffer(element).receive()

    def pending(self, element: str) -> int:
        """Number of unread values for ``element``."""
        return self.buffer(element).pending()

    def __repr__(self) -> str:
        return f"<PortInstance {self.full_name} {self.prototype.direction.value}>"


def provided_port(name: str, interface: PortInterface) -> PortPrototype:
    """Shorthand for a provided port prototype."""
    return PortPrototype(name, PortDirection.PROVIDED, interface)


def required_port(name: str, interface: PortInterface) -> PortPrototype:
    """Shorthand for a required port prototype."""
    return PortPrototype(name, PortDirection.REQUIRED, interface)


__all__ = [
    "PortDirection",
    "PortPrototype",
    "PortInstance",
    "provided_port",
    "required_port",
]
