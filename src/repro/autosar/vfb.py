"""Virtual Function Bus: the design-time connector model.

The VFB view is location-transparent: connectors join component instance
ports without saying where the instances run.  The RTE generator later
maps each connector either to a local route (same ECU) or to COM signals
over the vehicle network (different ECUs) — the components themselves
never change, which is the AUTOSAR property the paper's plug-in model
mirrors at the plug-in level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autosar.ports import PortPrototype
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Connector:
    """One VFB assembly connector between two instance ports."""

    from_instance: str
    from_port: str
    to_instance: str
    to_port: str

    def __str__(self) -> str:
        return (
            f"{self.from_instance}.{self.from_port} -> "
            f"{self.to_instance}.{self.to_port}"
        )


def validate_connector(
    connector: Connector,
    from_proto: PortPrototype,
    to_proto: PortPrototype,
) -> None:
    """Check direction and interface compatibility of a connector.

    Sender-receiver connectors run provided -> required.  Client-server
    connectors run required (client) -> provided (server); we normalise
    them in the system description so ``from`` is always the client.
    """
    if from_proto.is_sender_receiver != to_proto.is_sender_receiver:
        raise ConfigurationError(
            f"connector {connector}: mixed interface kinds"
        )
    if from_proto.is_sender_receiver:
        if not (from_proto.is_provided and to_proto.is_required):
            raise ConfigurationError(
                f"S/R connector {connector} must run provided -> required"
            )
    else:
        if not (from_proto.is_required and to_proto.is_provided):
            raise ConfigurationError(
                f"C/S connector {connector} must run client(required) -> "
                f"server(provided)"
            )
    if not from_proto.interface.compatible_with(to_proto.interface):
        raise ConfigurationError(
            f"connector {connector}: incompatible interfaces "
            f"({from_proto.interface.name} vs {to_proto.interface.name})"
        )


__all__ = ["Connector", "validate_connector"]
