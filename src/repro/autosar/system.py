"""System description: the design-time model the RTE is generated from.

A :class:`SystemDescription` collects ECUs, component instances with
their ECU allocation and task mapping, and VFB connectors.  It validates
structural consistency and is the single input to
:class:`repro.autosar.rte.generator.SystemBuilder`, mirroring how
AUTOSAR description files feed the RTE generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.autosar.interfaces import SenderReceiverInterface
from repro.autosar.swc import ComponentType, CompositionType
from repro.autosar.vfb import Connector, validate_connector
from repro.errors import ConfigurationError


@dataclass
class TaskMapping:
    """OS task parameters for one component instance."""

    task_name: str
    priority: int = 5
    preemptable: bool = True


@dataclass
class EcuDescription:
    """One ECU's static description."""

    name: str
    on_bus: bool = True
    memory_block_size: int = 256
    memory_block_count: int = 4096


@dataclass
class InstancePlacement:
    """A component instance allocated to an ECU."""

    instance_name: str
    ctype: ComponentType
    ecu_name: str
    task: TaskMapping = field(default_factory=lambda: TaskMapping("", 5))

    def __post_init__(self) -> None:
        if not self.task.task_name:
            self.task = TaskMapping(
                f"task_{self.instance_name}",
                self.task.priority,
                self.task.preemptable,
            )


class SystemDescription:
    """The complete design-time system model."""

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self.ecus: dict[str, EcuDescription] = {}
        self.placements: dict[str, InstancePlacement] = {}
        self.connectors: list[Connector] = []
        self.can_bitrate = 500_000

    def add_ecu(
        self,
        name: str,
        on_bus: bool = True,
        memory_block_size: int = 256,
        memory_block_count: int = 4096,
    ) -> EcuDescription:
        """Declare an ECU."""
        if name in self.ecus:
            raise ConfigurationError(f"duplicate ECU {name!r}")
        ecu = EcuDescription(name, on_bus, memory_block_size, memory_block_count)
        self.ecus[name] = ecu
        return ecu

    def add_component(
        self,
        instance_name: str,
        ctype: ComponentType,
        ecu_name: str,
        priority: int = 5,
        preemptable: bool = True,
    ) -> InstancePlacement:
        """Place an atomic component instance on an ECU."""
        if instance_name in self.placements:
            raise ConfigurationError(
                f"duplicate component instance {instance_name!r}"
            )
        if ecu_name not in self.ecus:
            raise ConfigurationError(f"unknown ECU {ecu_name!r}")
        placement = InstancePlacement(
            instance_name,
            ctype,
            ecu_name,
            TaskMapping(f"task_{instance_name}", priority, preemptable),
        )
        self.placements[instance_name] = placement
        return placement

    def add_composition(
        self,
        instance_prefix: str,
        composition: CompositionType,
        ecu_name: str,
        priority: int = 5,
    ) -> list[InstancePlacement]:
        """Place a composition; it is flattened into atomic instances."""
        instances, connectors = composition.flatten(instance_prefix)
        placements = [
            self.add_component(name, ctype, ecu_name, priority=priority)
            for name, ctype in instances
        ]
        for from_i, from_p, to_i, to_p in connectors:
            self.connect(from_i, from_p, to_i, to_p)
        return placements

    def placement(self, instance_name: str) -> InstancePlacement:
        """Look up a placement by instance name."""
        try:
            return self.placements[instance_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown component instance {instance_name!r}"
            ) from None

    def connect(
        self,
        from_instance: str,
        from_port: str,
        to_instance: str,
        to_port: str,
    ) -> Connector:
        """Add a VFB connector between two instance ports.

        For sender-receiver, ``from`` is the provider.  For
        client-server, ``from`` is the client (required port).
        """
        from_proto = self.placement(from_instance).ctype.port(from_port)
        to_proto = self.placement(to_instance).ctype.port(to_port)
        connector = Connector(from_instance, from_port, to_instance, to_port)
        validate_connector(connector, from_proto, to_proto)
        if connector in self.connectors:
            raise ConfigurationError(f"duplicate connector {connector}")
        self.connectors.append(connector)
        return connector

    def is_cross_ecu(self, connector: Connector) -> bool:
        """Whether a connector spans two ECUs."""
        return (
            self.placement(connector.from_instance).ecu_name
            != self.placement(connector.to_instance).ecu_name
        )

    def validate(self) -> None:
        """Full structural validation; raises on the first inconsistency."""
        if not self.ecus:
            raise ConfigurationError("system has no ECUs")
        for connector in self.connectors:
            from_place = self.placement(connector.from_instance)
            to_place = self.placement(connector.to_instance)
            from_proto = from_place.ctype.port(connector.from_port)
            to_proto = to_place.ctype.port(connector.to_port)
            validate_connector(connector, from_proto, to_proto)
            if self.is_cross_ecu(connector):
                if not from_proto.is_sender_receiver:
                    raise ConfigurationError(
                        f"cross-ECU client-server connector {connector} "
                        f"is not supported; use sender-receiver"
                    )
                ecus = (self.ecus[from_place.ecu_name], self.ecus[to_place.ecu_name])
                if not all(e.on_bus for e in ecus):
                    raise ConfigurationError(
                        f"cross-ECU connector {connector} requires both "
                        f"ECUs on the bus"
                    )
        # Each required S/R element may have at most one writer per
        # element; multiple receivers of one provider are fine.
        seen_receivers: dict[tuple[str, str], str] = {}
        for connector in self.connectors:
            to_proto = self.placement(connector.to_instance).ctype.port(
                connector.to_port
            )
            if not to_proto.is_sender_receiver:
                continue
            key = (connector.to_instance, connector.to_port)
            if key in seen_receivers:
                raise ConfigurationError(
                    f"port {key[0]}.{key[1]} has multiple writers "
                    f"({seen_receivers[key]} and {connector.from_instance})"
                )
            seen_receivers[key] = connector.from_instance

    def cross_ecu_elements(self) -> list[tuple[Connector, str]]:
        """All (connector, element) pairs that need COM signals."""
        out = []
        for connector in self.connectors:
            if not self.is_cross_ecu(connector):
                continue
            proto = self.placement(connector.from_instance).ctype.port(
                connector.from_port
            )
            iface = proto.interface
            assert isinstance(iface, SenderReceiverInterface)
            for element in iface.elements:
                out.append((connector, element.name))
        return out


__all__ = [
    "TaskMapping",
    "EcuDescription",
    "InstancePlacement",
    "SystemDescription",
]
