"""Runnable entities: the schedulable units inside an SW-C.

A runnable couples a Python callable (the behaviour) with a declared
execution time, which the OSEK-style scheduler uses to model CPU
occupancy and preemption.  The callable receives the owning component
instance, through which it reaches its ports and the RTE API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.autosar.swc import ComponentInstance


#: Signature of a runnable body: receives the owning component instance.
RunnableBody = Callable[["ComponentInstance"], None]


@dataclass
class Runnable:
    """One runnable entity of a component type.

    ``execution_time_us`` is the nominal CPU time one activation
    consumes; the scheduler charges this to the mapped task.  A runnable
    may be re-entrant in AUTOSAR; here each activation runs to completion
    within its task, so no concurrency control is needed.
    """

    name: str
    body: Optional[RunnableBody] = None
    execution_time_us: int = 50

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("runnable needs a non-empty name")
        if self.execution_time_us < 0:
            raise ConfigurationError(
                f"runnable {self.name} has negative execution time"
            )
        self.activations = 0

    def run(self, instance: "ComponentInstance") -> None:
        """Execute the behaviour once (invoked by the scheduler)."""
        self.activations += 1
        if self.body is not None:
            self.body(instance)

    def __repr__(self) -> str:
        return f"<Runnable {self.name} {self.execution_time_us}us>"


__all__ = ["Runnable", "RunnableBody"]
