"""Software components: types, compositions, and runtime instances.

A :class:`ComponentType` is the reusable design-time artefact (ports,
runnables, events).  A :class:`CompositionType` nests component
prototypes and re-exports inner ports through delegation.  A
:class:`ComponentInstance` is the runtime object living on one ECU,
holding port instances and the hook to the ECU's RTE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

from repro.autosar.events import (
    DataReceivedEvent,
    InitEvent,
    OperationInvokedEvent,
    RteEvent,
    TimingEvent,
)
from repro.autosar.ports import PortInstance, PortPrototype
from repro.autosar.runnable import Runnable
from repro.errors import ConfigurationError, PortError

if TYPE_CHECKING:  # pragma: no cover
    from repro.autosar.rte.rte import Rte


class ComponentType:
    """An atomic AUTOSAR software component type."""

    def __init__(
        self,
        name: str,
        ports: Sequence[PortPrototype] = (),
        runnables: Sequence[Runnable] = (),
        events: Sequence[RteEvent] = (),
    ) -> None:
        if not name:
            raise ConfigurationError("component type needs a non-empty name")
        self.name = name
        self._ports: dict[str, PortPrototype] = {}
        for port in ports:
            self.add_port(port)
        self._runnables: dict[str, Runnable] = {}
        for runnable in runnables:
            self.add_runnable(runnable)
        self.events: list[RteEvent] = []
        for event in events:
            self.add_event(event)
        #: (port, operation) -> server implementation, registered by the
        #: component author and installed into the RTE at build time.
        self.operation_handlers: dict[tuple[str, str], Any] = {}

    @property
    def ports(self) -> list[PortPrototype]:
        return list(self._ports.values())

    @property
    def runnables(self) -> list[Runnable]:
        return list(self._runnables.values())

    def add_port(self, port: PortPrototype) -> None:
        """Declare a port; names must be unique within the type."""
        if port.name in self._ports:
            raise ConfigurationError(
                f"duplicate port {port.name!r} on component {self.name}"
            )
        self._ports[port.name] = port

    def add_runnable(self, runnable: Runnable) -> None:
        """Declare a runnable; names must be unique within the type."""
        if runnable.name in self._runnables:
            raise ConfigurationError(
                f"duplicate runnable {runnable.name!r} on {self.name}"
            )
        self._runnables[runnable.name] = runnable

    def add_event(self, event: RteEvent) -> None:
        """Attach an event; it must reference declared entities."""
        if event.runnable not in self._runnables:
            raise ConfigurationError(
                f"event references unknown runnable {event.runnable!r} "
                f"on component {self.name}"
            )
        if isinstance(event, (DataReceivedEvent,)):
            port = self.port(event.port)
            if not port.is_required or not port.is_sender_receiver:
                raise ConfigurationError(
                    f"data-received event needs a required S/R port, "
                    f"got {event.port!r} on {self.name}"
                )
        if isinstance(event, OperationInvokedEvent):
            port = self.port(event.port)
            if not port.is_provided or not port.is_client_server:
                raise ConfigurationError(
                    f"operation-invoked event needs a provided C/S port, "
                    f"got {event.port!r} on {self.name}"
                )
        self.events.append(event)

    def add_operation_handler(
        self, port: str, operation: str, handler: Any
    ) -> None:
        """Register the implementation of a provided C/S operation."""
        prototype = self.port(port)
        if not prototype.is_provided or not prototype.is_client_server:
            raise ConfigurationError(
                f"operation handler needs a provided C/S port; "
                f"{self.name}.{port} is not one"
            )
        prototype.interface.operation(operation)  # type: ignore[union-attr]
        self.operation_handlers[(port, operation)] = handler

    def port(self, name: str) -> PortPrototype:
        """Look up a port prototype by name."""
        try:
            return self._ports[name]
        except KeyError:
            raise PortError(
                f"component {self.name} has no port {name!r}"
            ) from None

    def runnable(self, name: str) -> Runnable:
        """Look up a runnable by name."""
        try:
            return self._runnables[name]
        except KeyError:
            raise ConfigurationError(
                f"component {self.name} has no runnable {name!r}"
            ) from None

    def instantiate(self, instance_name: str) -> "ComponentInstance":
        """Create a runtime instance of this type."""
        return ComponentInstance(instance_name, self)

    def __repr__(self) -> str:
        return f"<ComponentType {self.name}>"


@dataclass(frozen=True)
class DelegationPort:
    """Composition boundary port delegating to an inner prototype port."""

    outer_name: str
    inner_component: str
    inner_port: str


class CompositionType:
    """A composite component: prototypes of inner components plus
    assembly connectors between them and delegation ports outward.

    Compositions are flattened at system-build time; the RTE only ever
    sees atomic instances, matching how AUTOSAR tooling flattens the
    VFB view into the ECU extract.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("composition needs a non-empty name")
        self.name = name
        self.prototypes: dict[str, ComponentType] = {}
        self.assembly_connectors: list[tuple[str, str, str, str]] = []
        self.delegation_ports: list[DelegationPort] = []

    def add_prototype(self, prototype_name: str, ctype: ComponentType) -> None:
        """Embed a component type under a local prototype name."""
        if prototype_name in self.prototypes:
            raise ConfigurationError(
                f"duplicate prototype {prototype_name!r} in {self.name}"
            )
        self.prototypes[prototype_name] = ctype

    def connect(
        self, from_proto: str, from_port: str, to_proto: str, to_port: str
    ) -> None:
        """Assembly connector between two inner prototypes."""
        for proto, port in ((from_proto, from_port), (to_proto, to_port)):
            if proto not in self.prototypes:
                raise ConfigurationError(
                    f"composition {self.name} has no prototype {proto!r}"
                )
            self.prototypes[proto].port(port)
        src = self.prototypes[from_proto].port(from_port)
        dst = self.prototypes[to_proto].port(to_port)
        if not src.is_provided or not dst.is_required:
            raise ConfigurationError(
                f"assembly connector must run provided->required "
                f"({from_proto}.{from_port} -> {to_proto}.{to_port})"
            )
        if not src.interface.compatible_with(dst.interface):
            raise ConfigurationError(
                f"incompatible interfaces on connector "
                f"{from_proto}.{from_port} -> {to_proto}.{to_port}"
            )
        self.assembly_connectors.append(
            (from_proto, from_port, to_proto, to_port)
        )

    def delegate(
        self, outer_name: str, inner_component: str, inner_port: str
    ) -> None:
        """Expose an inner port on the composition boundary."""
        if inner_component not in self.prototypes:
            raise ConfigurationError(
                f"composition {self.name} has no prototype {inner_component!r}"
            )
        self.prototypes[inner_component].port(inner_port)
        if any(d.outer_name == outer_name for d in self.delegation_ports):
            raise ConfigurationError(
                f"duplicate delegation port {outer_name!r} on {self.name}"
            )
        self.delegation_ports.append(
            DelegationPort(outer_name, inner_component, inner_port)
        )

    def flatten(
        self, instance_prefix: str
    ) -> tuple[list[tuple[str, ComponentType]], list[tuple[str, str, str, str]]]:
        """Expand into atomic instances and instance-level connectors.

        Returns ``(instances, connectors)`` where instance names are
        ``prefix.prototype`` and connectors reference those names.
        """
        instances = [
            (f"{instance_prefix}.{proto}", ctype)
            for proto, ctype in self.prototypes.items()
        ]
        connectors = [
            (
                f"{instance_prefix}.{a}",
                ap,
                f"{instance_prefix}.{b}",
                bp,
            )
            for a, ap, b, bp in self.assembly_connectors
        ]
        return instances, connectors

    def resolve_delegation(
        self, instance_prefix: str, outer_name: str
    ) -> tuple[str, str]:
        """Map a boundary port to its inner ``(instance, port)`` pair."""
        for delegation in self.delegation_ports:
            if delegation.outer_name == outer_name:
                return (
                    f"{instance_prefix}.{delegation.inner_component}",
                    delegation.inner_port,
                )
        raise PortError(
            f"composition {self.name} has no delegation port {outer_name!r}"
        )


class ComponentInstance:
    """A runtime instance of an atomic component type on one ECU."""

    def __init__(self, name: str, ctype: ComponentType) -> None:
        if not name:
            raise ConfigurationError("component instance needs a name")
        self.name = name
        self.ctype = ctype
        self.ports: dict[str, PortInstance] = {
            p.name: PortInstance(name, p) for p in ctype.ports
        }
        self.rte: Optional["Rte"] = None
        #: Free-form per-instance state for runnable bodies.
        self.state: dict[str, Any] = {}

    def port(self, name: str) -> PortInstance:
        """Look up a runtime port by name."""
        try:
            return self.ports[name]
        except KeyError:
            raise PortError(
                f"instance {self.name} has no port {name!r}"
            ) from None

    def write(self, port: str, element: str, value: Any) -> None:
        """Rte_Write: send ``value`` out of a provided S/R port."""
        if self.rte is None:
            raise ConfigurationError(
                f"instance {self.name} is not bound to an RTE"
            )
        self.rte.write(self, port, element, value)

    def read(self, port: str, element: str) -> Any:
        """Rte_Read: last-is-best read from a required S/R port."""
        return self.port(port).read_latest(element)

    def receive(self, port: str, element: str) -> Any:
        """Rte_Receive: queued read from a required S/R port."""
        return self.port(port).receive(element)

    def pending(self, port: str, element: str) -> int:
        """Unconsumed values on a required port element."""
        return self.port(port).pending(element)

    def call(self, port: str, operation: str, **arguments: Any) -> Any:
        """Rte_Call: synchronous client-server invocation."""
        if self.rte is None:
            raise ConfigurationError(
                f"instance {self.name} is not bound to an RTE"
            )
        return self.rte.call(self, port, operation, arguments)

    def __repr__(self) -> str:
        return f"<ComponentInstance {self.name} of {self.ctype.name}>"


__all__ = [
    "ComponentType",
    "CompositionType",
    "DelegationPort",
    "ComponentInstance",
]
