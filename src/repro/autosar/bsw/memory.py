"""Static memory management.

Classical AUTOSAR BSW offers no dynamic heap; memory is carved into
statically configured fixed-size block pools.  The plug-in SW-C's VM is
"assigned its own memory" (paper Sec. 3.1.1), which it sub-allocates to
plug-ins — modelled here as a dedicated :class:`MemoryPool` charged per
installed binary and per VM instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MemoryPoolError


@dataclass(frozen=True)
class Allocation:
    """A granted allocation: opaque handle plus its footprint."""

    pool: str
    handle: int
    blocks: int
    requested_bytes: int


class MemoryPool:
    """Fixed-size block allocator with exhaustion semantics."""

    def __init__(self, name: str, block_size: int, block_count: int) -> None:
        if block_size <= 0 or block_count <= 0:
            raise MemoryPoolError(
                f"pool {name}: block size and count must be positive"
            )
        self.name = name
        self.block_size = block_size
        self.block_count = block_count
        self._free = block_count
        self._next_handle = 1
        self._live: dict[int, Allocation] = {}
        self.peak_used = 0
        self.failed_allocations = 0

    @property
    def free_blocks(self) -> int:
        return self._free

    @property
    def used_blocks(self) -> int:
        return self.block_count - self._free

    @property
    def capacity_bytes(self) -> int:
        return self.block_size * self.block_count

    def blocks_for(self, size_bytes: int) -> int:
        """Blocks needed to hold ``size_bytes``."""
        if size_bytes < 0:
            raise MemoryPoolError(f"negative allocation size {size_bytes}")
        return max(1, -(-size_bytes // self.block_size))

    def can_allocate(self, size_bytes: int) -> bool:
        """Whether an allocation of ``size_bytes`` would succeed."""
        return self.blocks_for(size_bytes) <= self._free

    def allocate(self, size_bytes: int) -> Allocation:
        """Allocate blocks for ``size_bytes``; raises on exhaustion."""
        blocks = self.blocks_for(size_bytes)
        if blocks > self._free:
            self.failed_allocations += 1
            raise MemoryPoolError(
                f"pool {self.name} exhausted: need {blocks} blocks, "
                f"{self._free} free"
            )
        self._free -= blocks
        allocation = Allocation(self.name, self._next_handle, blocks, size_bytes)
        self._next_handle += 1
        self._live[allocation.handle] = allocation
        self.peak_used = max(self.peak_used, self.used_blocks)
        return allocation

    def release(self, allocation: Allocation) -> None:
        """Return an allocation's blocks to the pool."""
        if allocation.pool != self.name:
            raise MemoryPoolError(
                f"allocation belongs to pool {allocation.pool}, "
                f"not {self.name}"
            )
        if allocation.handle not in self._live:
            raise MemoryPoolError(
                f"double free or foreign handle {allocation.handle} "
                f"in pool {self.name}"
            )
        del self._live[allocation.handle]
        self._free += allocation.blocks

    def live_allocations(self) -> list[Allocation]:
        """Currently outstanding allocations."""
        return list(self._live.values())


class MemoryManager:
    """Named registry of pools on one ECU."""

    def __init__(self) -> None:
        self.pools: dict[str, MemoryPool] = {}

    def create_pool(
        self, name: str, block_size: int, block_count: int
    ) -> MemoryPool:
        """Create a pool; names are unique per ECU."""
        if name in self.pools:
            raise MemoryPoolError(f"duplicate pool {name!r}")
        pool = MemoryPool(name, block_size, block_count)
        self.pools[name] = pool
        return pool

    def pool(self, name: str) -> MemoryPool:
        """Look up a pool by name."""
        try:
            return self.pools[name]
        except KeyError:
            raise MemoryPoolError(f"no pool named {name!r}") from None

    def total_capacity(self) -> int:
        """Sum of all pool capacities in bytes."""
        return sum(p.capacity_bytes for p in self.pools.values())


__all__ = ["Allocation", "MemoryPool", "MemoryManager"]
