"""PDU router: the switch between COM and the bus interfaces.

In full AUTOSAR the PduR fans PDUs out to multiple bus interfaces and
gateway paths; here it routes between one COM stack and one CanIf, while
still keeping the layering (COM never touches CanIf directly), so
gatewaying and multi-bus ECUs can be added without touching COM.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.autosar.bsw.canif import CanInterface
from repro.errors import ComError


class PduRouter:
    """Routes transmit PDUs down and received PDUs up."""

    def __init__(self, canif: CanInterface) -> None:
        self.canif = canif
        self.canif.set_upper_layer(self._rx_indication)
        self._upper: Optional[Callable[[int, bytes], None]] = None
        self.routed_tx = 0
        self.routed_rx = 0

    def set_upper_layer(self, callback: Callable[[int, bytes], None]) -> None:
        """Install the COM stack's RX indication callback."""
        self._upper = callback

    def transmit(self, pdu_id: int, payload: bytes) -> bool:
        """Route a PDU toward the CAN interface."""
        self.routed_tx += 1
        return self.canif.transmit(pdu_id, payload)

    def _rx_indication(self, pdu_id: int, payload: bytes) -> None:
        self.routed_rx += 1
        if self._upper is not None:
            self._upper(pdu_id, payload)


__all__ = ["PduRouter"]
