"""The COM module: signal-level communication over PDUs.

COM is where the RTE's inter-ECU writes become bus traffic.  Each signal
is configured with a data type and a PDU id (allocated by the RTE
generator so that sender and receiver agree).  Fixed-size signals are
transmitted directly in one PDU; variable-size byte signals are
segmented through the transport protocol (``repro.autosar.bsw.tp``),
which is how multi-kilobyte plug-in installation packages traverse the
in-vehicle network.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.autosar.bsw.pdur import PduRouter
from repro.autosar.bsw.tp import Reassembler, segment
from repro.autosar.types import DataType
from repro.errors import ComError


@dataclass(frozen=True)
class SignalConfig:
    """Static configuration of one COM signal.

    ``period_us`` > 0 selects AUTOSAR's periodic transmission mode: COM
    re-transmits the last written value on that cycle (used for state
    signals like vehicle speed); 0 means direct transmission on every
    write (events, commands).  Periodic mode requires a fixed-size type.
    """

    name: str
    signal_id: int
    dtype: DataType
    pdu_id: int
    period_us: int = 0

    def __post_init__(self) -> None:
        if self.period_us < 0:
            raise ComError(f"signal {self.name}: negative period")
        if self.period_us > 0 and not self.dtype.fixed_size:
            raise ComError(
                f"signal {self.name}: periodic transmission requires a "
                f"fixed-size type"
            )

    @property
    def uses_tp(self) -> bool:
        """Variable-size signals travel segmented over TP."""
        return not self.dtype.fixed_size

    @property
    def periodic(self) -> bool:
        return self.period_us > 0


class ComStack:
    """Per-ECU COM module."""

    def __init__(self, pdur: PduRouter, name: str = "com", sim=None) -> None:
        self.name = name
        self.sim = sim
        self.pdur = pdur
        self.pdur.set_upper_layer(self._on_pdu)
        self.pdur.canif.controller.add_tx_confirm_hook(self._on_tx_confirm)
        self._tx_signals: dict[int, SignalConfig] = {}
        self._rx_signals_by_pdu: dict[int, SignalConfig] = {}
        self._reassemblers: dict[int, Reassembler] = {}
        self._listeners: dict[int, list[Callable[[Any], None]]] = {}
        # Software transmit backlog: segments the controller could not
        # take yet.  Drained on every TX confirmation (flow control).
        self._tx_backlog: deque[tuple[int, bytes]] = deque()
        self._periodic_values: dict[int, Any] = {}
        self.signals_sent = 0
        self.signals_received = 0
        self.tx_failures = 0
        self.backlog_peak = 0
        self.periodic_transmissions = 0

    def configure_tx_signal(self, config: SignalConfig) -> None:
        """Register a transmit signal; periodic mode starts its cycle."""
        if config.signal_id in self._tx_signals:
            raise ComError(f"tx signal {config.signal_id} already configured")
        self._tx_signals[config.signal_id] = config
        if config.periodic:
            if self.sim is None:
                raise ComError(
                    f"signal {config.name}: periodic transmission needs a "
                    f"simulator-bound COM stack"
                )
            self._periodic_values[config.signal_id] = config.dtype.initial_value()
            self.sim.schedule(
                config.period_us,
                lambda: self._periodic_tick(config),
                f"com:{self.name}:{config.name}",
            )

    def _periodic_tick(self, config: SignalConfig) -> None:
        if config.signal_id not in self._tx_signals:
            return
        value = self._periodic_values.get(config.signal_id)
        payload = config.dtype.encode(value)
        self._tx_backlog.append((config.pdu_id, payload))
        self._pump()
        self.periodic_transmissions += 1
        assert self.sim is not None
        self.sim.schedule(
            config.period_us,
            lambda: self._periodic_tick(config),
            f"com:{self.name}:{config.name}",
        )

    def configure_rx_signal(self, config: SignalConfig) -> None:
        """Register a receive signal (keyed by its PDU)."""
        if config.pdu_id in self._rx_signals_by_pdu:
            raise ComError(f"rx PDU {config.pdu_id} already configured")
        self._rx_signals_by_pdu[config.pdu_id] = config
        if config.uses_tp:
            self._reassemblers[config.pdu_id] = Reassembler()

    def subscribe(
        self, signal_id: int, callback: Callable[[Any], None]
    ) -> None:
        """Deliver decoded values of ``signal_id`` to ``callback``."""
        self._listeners.setdefault(signal_id, []).append(callback)

    def send_signal(self, signal_id: int, value: Any) -> bool:
        """Encode and transmit one signal value.

        Segments that the controller cannot accept immediately are
        parked in a software backlog and fed in on TX confirmations, so
        arbitrarily large TP payloads never overrun the controller.
        """
        config = self._tx_signals.get(signal_id)
        if config is None:
            raise ComError(f"unknown tx signal {signal_id}")
        payload = config.dtype.encode(value)
        self.signals_sent += 1
        if config.periodic:
            # Periodic mode: writes update the signal buffer; the cycle
            # timer does the transmitting.
            self._periodic_values[signal_id] = value
            return True
        if config.uses_tp:
            for chunk in segment(payload):
                self._tx_backlog.append((config.pdu_id, chunk))
        else:
            if len(payload) > 8:
                raise ComError(
                    f"fixed signal {config.name} encodes to {len(payload)} "
                    f"bytes; classical CAN PDUs carry at most 8"
                )
            self._tx_backlog.append((config.pdu_id, payload))
        self.backlog_peak = max(self.backlog_peak, len(self._tx_backlog))
        self._pump()
        return True

    def _pump(self) -> None:
        """Feed backlog segments into the controller until it refuses."""
        while self._tx_backlog:
            pdu_id, chunk = self._tx_backlog[0]
            if not self.pdur.transmit(pdu_id, chunk):
                self.tx_failures += 1
                return
            self._tx_backlog.popleft()

    def _on_tx_confirm(self, _frame) -> None:
        self._pump()

    @property
    def tx_backlog_depth(self) -> int:
        """Segments still waiting in the software backlog."""
        return len(self._tx_backlog)

    def _on_pdu(self, pdu_id: int, payload: bytes) -> None:
        config = self._rx_signals_by_pdu.get(pdu_id)
        if config is None:
            return
        if config.uses_tp:
            complete = self._reassemblers[pdu_id].feed(payload)
            if complete is None:
                return
            value: Any = config.dtype.decode(complete)
        else:
            value = config.dtype.decode(payload)
        self.signals_received += 1
        for callback in self._listeners.get(config.signal_id, []):
            callback(value)

    def reassembly_aborts(self) -> int:
        """Total TP reassemblies aborted (diagnostics)."""
        return sum(r.aborted for r in self._reassemblers.values())


__all__ = ["SignalConfig", "ComStack"]
