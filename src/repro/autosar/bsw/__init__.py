"""Basic software: COM stack, PDU router, CAN interface, memory pools."""

from repro.autosar.bsw.canif import CanInterface
from repro.autosar.bsw.com import ComStack, SignalConfig
from repro.autosar.bsw.memory import Allocation, MemoryManager, MemoryPool
from repro.autosar.bsw.pdur import PduRouter
from repro.autosar.bsw.tp import MAX_TP_PAYLOAD, Reassembler, roundtrip, segment

__all__ = [
    "CanInterface",
    "ComStack",
    "SignalConfig",
    "Allocation",
    "MemoryManager",
    "MemoryPool",
    "PduRouter",
    "MAX_TP_PAYLOAD",
    "Reassembler",
    "roundtrip",
    "segment",
]
