"""CAN interface: binds PDU identifiers to CAN identifiers.

CanIf is the lowest BSW communication layer here: it owns the ECU's
:class:`~repro.can.controller.CanController`, maps transmit PDUs onto CAN
frames, and dispatches received frames upward by PDU id.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.can.controller import CanController
from repro.can.frame import CanFrame
from repro.errors import ComError


class CanInterface:
    """PDU <-> CAN id mapping layer over one CAN controller."""

    def __init__(self, controller: CanController) -> None:
        self.controller = controller
        self._tx_map: dict[int, int] = {}
        self._rx_map: dict[int, int] = {}
        self._upper: Optional[Callable[[int, bytes], None]] = None
        self.tx_requests = 0
        self.tx_rejects = 0

    def configure_tx(self, pdu_id: int, can_id: int) -> None:
        """Route transmit PDU ``pdu_id`` onto CAN identifier ``can_id``."""
        if pdu_id in self._tx_map:
            raise ComError(f"tx PDU {pdu_id} already configured")
        self._tx_map[pdu_id] = can_id

    def configure_rx(self, can_id: int, pdu_id: int) -> None:
        """Deliver frames with ``can_id`` upward as ``pdu_id``."""
        if can_id in self._rx_map:
            raise ComError(f"rx CAN id {can_id:#x} already configured")
        self._rx_map[can_id] = pdu_id
        self.controller.subscribe(can_id, self._on_frame)

    def set_upper_layer(self, callback: Callable[[int, bytes], None]) -> None:
        """Install the RX indication callback (PduR)."""
        self._upper = callback

    def transmit(self, pdu_id: int, payload: bytes) -> bool:
        """Send one PDU; returns False when the controller queue is full."""
        can_id = self._tx_map.get(pdu_id)
        if can_id is None:
            raise ComError(f"no tx route for PDU {pdu_id}")
        self.tx_requests += 1
        ok = self.controller.transmit(CanFrame(can_id, payload))
        if not ok:
            self.tx_rejects += 1
        return ok

    def _on_frame(self, frame: CanFrame) -> None:
        pdu_id = self._rx_map.get(frame.can_id)
        if pdu_id is None or self._upper is None:
            return
        self._upper(pdu_id, frame.data)


__all__ = ["CanInterface"]
