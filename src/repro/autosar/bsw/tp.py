"""Transport-protocol segmentation for payloads larger than one frame.

Classical CAN carries at most 8 data bytes, but the dynamic component
model ships multi-kilobyte installation packages between ECUs (ECM to
plug-in SW-C over type I ports).  This module provides an ISO-TP-style
segmentation scheme adapted for simulation:

* **Single frame** — ``[0x0N][data…]`` with N = payload length <= 7.
* **First frame**  — ``[0x10][len2][len1][len0][4 bytes data]`` carrying a
  24-bit total length (supports payloads up to 16 MiB).
* **Consecutive**  — ``[0x2S][7 bytes data]`` with S a 4-bit wrapping
  sequence number starting at 1.

Flow control frames are omitted (the receiver is assumed to keep up);
this matches the simulation's lossless in-vehicle bus.  Out-of-order or
missing consecutive frames abort the reassembly, which surfaces as a
dropped message — exercised by the failure-injection tests.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import ComError

_SF = 0x00
_FF = 0x10
_CF = 0x20
MAX_TP_PAYLOAD = (1 << 24) - 1


def segment(payload: bytes) -> list[bytes]:
    """Split ``payload`` into CAN-frame-sized TP segments."""
    if len(payload) > MAX_TP_PAYLOAD:
        raise ComError(
            f"payload of {len(payload)} bytes exceeds TP limit {MAX_TP_PAYLOAD}"
        )
    if len(payload) <= 7:
        return [bytes([_SF | len(payload)]) + payload]
    total = len(payload)
    first = bytes([_FF, (total >> 16) & 0xFF, (total >> 8) & 0xFF, total & 0xFF])
    segments = [first + payload[:4]]
    offset = 4
    seq = 1
    while offset < total:
        chunk = payload[offset : offset + 7]
        segments.append(bytes([_CF | (seq & 0x0F)]) + chunk)
        offset += 7
        seq = (seq + 1) & 0x0F
    return segments


class Reassembler:
    """Stateful receive side of the TP protocol (one per channel)."""

    def __init__(self) -> None:
        self._expected_len: Optional[int] = None
        self._buffer = bytearray()
        self._next_seq = 1
        self.completed = 0
        self.aborted = 0

    @property
    def in_progress(self) -> bool:
        return self._expected_len is not None

    def reset(self) -> None:
        """Abort any in-progress reassembly."""
        if self.in_progress:
            self.aborted += 1
        self._expected_len = None
        self._buffer = bytearray()
        self._next_seq = 1

    def feed(self, segment_bytes: bytes) -> Optional[bytes]:
        """Consume one segment; returns the payload when complete."""
        if not segment_bytes:
            raise ComError("empty TP segment")
        pci = segment_bytes[0] & 0xF0
        if (segment_bytes[0] & 0xF0) == _SF and segment_bytes[0] <= 0x07:
            if self.in_progress:
                self.reset()
            length = segment_bytes[0] & 0x0F
            if len(segment_bytes) - 1 < length:
                raise ComError("single frame shorter than declared length")
            self.completed += 1
            return bytes(segment_bytes[1 : 1 + length])
        if pci == _FF:
            if self.in_progress:
                self.reset()
            if len(segment_bytes) < 4:
                raise ComError("truncated first frame")
            self._expected_len = (
                (segment_bytes[1] << 16)
                | (segment_bytes[2] << 8)
                | segment_bytes[3]
            )
            self._buffer = bytearray(segment_bytes[4:])
            self._next_seq = 1
            return self._maybe_complete()
        if pci == _CF:
            if not self.in_progress:
                # Stray continuation (e.g. we joined mid-message): drop.
                self.aborted += 1
                return None
            seq = segment_bytes[0] & 0x0F
            if seq != self._next_seq:
                self.reset()
                return None
            self._next_seq = (self._next_seq + 1) & 0x0F
            self._buffer.extend(segment_bytes[1:])
            return self._maybe_complete()
        raise ComError(f"unknown TP PCI byte {segment_bytes[0]:#04x}")

    def _maybe_complete(self) -> Optional[bytes]:
        assert self._expected_len is not None
        if len(self._buffer) < self._expected_len:
            return None
        payload = bytes(self._buffer[: self._expected_len])
        self._expected_len = None
        self._buffer = bytearray()
        self._next_seq = 1
        self.completed += 1
        return payload


def roundtrip(payload: bytes) -> bytes:
    """Segment then reassemble (testing/diagnostic helper)."""
    reassembler = Reassembler()
    result: Optional[bytes] = None
    for seg in segment(payload):
        result = reassembler.feed(seg)
    if result is None:
        raise ComError("reassembly did not complete")
    return result


__all__ = ["segment", "Reassembler", "roundtrip", "MAX_TP_PAYLOAD"]
