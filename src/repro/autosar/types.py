"""AUTOSAR application data types.

A small but faithful slice of the AUTOSAR type system: fixed-width scalar
types with range checking and little-endian byte encoding (what COM packs
into PDUs), plus a variable-length byte-array type used by the dynamic
component model to ship opaque plug-in payloads through standard ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.errors import ConfigurationError


class DataType:
    """Base class of all application data types.

    Concrete subclasses are dataclasses that define a ``name`` field;
    the base deliberately declares no attributes so dataclass field
    ordering in subclasses is unconstrained.
    """

    def validate(self, value: Any) -> None:
        """Raise :class:`ValueError` when ``value`` is not representable."""
        raise NotImplementedError

    def encode(self, value: Any) -> bytes:
        """Serialize ``value`` to its wire representation."""
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        """Inverse of :meth:`encode`."""
        raise NotImplementedError

    @property
    def fixed_size(self) -> bool:
        """Whether the wire representation has a constant byte length."""
        return True

    def byte_length(self) -> int:
        """Wire length in bytes (fixed-size types only)."""
        raise NotImplementedError

    def initial_value(self) -> Any:
        """Default value used to initialise receiver buffers."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True, repr=False)
class IntegerType(DataType):
    """Fixed-width two's-complement or unsigned integer."""

    name: str
    bits: int
    signed: bool

    def __post_init__(self) -> None:
        if self.bits not in (8, 16, 32, 64):
            raise ConfigurationError(f"unsupported integer width {self.bits}")

    @property
    def low(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def high(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def validate(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"{self.name} requires an int (got {value!r})")
        if not self.low <= value <= self.high:
            raise ValueError(
                f"{value} outside {self.name} range [{self.low}, {self.high}]"
            )

    def encode(self, value: int) -> bytes:
        self.validate(value)
        return value.to_bytes(self.bits // 8, "little", signed=self.signed)

    def decode(self, data: bytes) -> int:
        if len(data) != self.bits // 8:
            raise ValueError(
                f"{self.name} expects {self.bits // 8} bytes, got {len(data)}"
            )
        return int.from_bytes(data, "little", signed=self.signed)

    def byte_length(self) -> int:
        return self.bits // 8

    def initial_value(self) -> int:
        return 0


@dataclass(frozen=True, repr=False)
class BooleanType(DataType):
    """One-byte boolean."""

    name: str = "boolean"

    def validate(self, value: Any) -> None:
        if not isinstance(value, bool):
            raise ValueError(f"boolean required (got {value!r})")

    def encode(self, value: bool) -> bytes:
        self.validate(value)
        return b"\x01" if value else b"\x00"

    def decode(self, data: bytes) -> bool:
        if len(data) != 1:
            raise ValueError(f"boolean expects 1 byte, got {len(data)}")
        return data != b"\x00"

    def byte_length(self) -> int:
        return 1

    def initial_value(self) -> bool:
        return False


@dataclass(frozen=True, repr=False)
class BytesType(DataType):
    """Variable-length opaque byte array, bounded by ``max_length``.

    This is the carrier type for the dynamic component model: plug-in
    binaries, contexts, and multiplexed plug-in messages all travel as
    ``BytesType`` elements through ordinary SW-C ports, exactly as the
    paper's type I/II ports carry opaque plug-in data.
    """

    name: str = "bytes"
    max_length: int = 65_535

    def validate(self, value: Any) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise ValueError(f"{self.name} requires bytes (got {type(value)})")
        if len(value) > self.max_length:
            raise ValueError(
                f"payload of {len(value)} bytes exceeds {self.name} "
                f"max of {self.max_length}"
            )

    def encode(self, value: Union[bytes, bytearray]) -> bytes:
        self.validate(value)
        return bytes(value)

    def decode(self, data: bytes) -> bytes:
        if len(data) > self.max_length:
            raise ValueError(f"{len(data)} bytes exceeds max {self.max_length}")
        return bytes(data)

    @property
    def fixed_size(self) -> bool:
        return False

    def byte_length(self) -> int:
        raise ConfigurationError(f"{self.name} has no fixed byte length")

    def initial_value(self) -> bytes:
        return b""


UINT8 = IntegerType("uint8", 8, signed=False)
UINT16 = IntegerType("uint16", 16, signed=False)
UINT32 = IntegerType("uint32", 32, signed=False)
INT8 = IntegerType("sint8", 8, signed=True)
INT16 = IntegerType("sint16", 16, signed=True)
INT32 = IntegerType("sint32", 32, signed=True)
BOOL = BooleanType()
BYTES = BytesType()

#: Registry used by the configuration serializer to name types.
STANDARD_TYPES: dict[str, DataType] = {
    t.name: t
    for t in (UINT8, UINT16, UINT32, INT8, INT16, INT32, BOOL, BYTES)
}


def lookup_type(name: str) -> DataType:
    """Resolve a standard type by name (used by the config loader)."""
    try:
        return STANDARD_TYPES[name]
    except KeyError:
        raise ConfigurationError(f"unknown data type {name!r}") from None


__all__ = [
    "DataType",
    "IntegerType",
    "BooleanType",
    "BytesType",
    "UINT8",
    "UINT16",
    "UINT32",
    "INT8",
    "INT16",
    "INT32",
    "BOOL",
    "BYTES",
    "STANDARD_TYPES",
    "lookup_type",
]
