"""Runtime ECU: the container of OS, BSW, RTE, and component instances.

An :class:`Ecu` is assembled by the system builder; application code
interacts with it through its component instances and, for the dynamic
component model, through the PIRTE living inside a plug-in SW-C.
"""

from __future__ import annotations

from typing import Optional

from repro.autosar.bsw.canif import CanInterface
from repro.autosar.bsw.com import ComStack
from repro.autosar.bsw.memory import MemoryManager
from repro.autosar.bsw.pdur import PduRouter
from repro.autosar.os.alarm import AlarmManager
from repro.autosar.os.scheduler import Cpu
from repro.autosar.os.task import Task
from repro.autosar.rte.rte import Rte
from repro.autosar.swc import ComponentInstance
from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.tracing import Tracer


class Ecu:
    """One electronic control unit at run time."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        tracer: Optional[Tracer] = None,
        memory_block_size: int = 256,
        memory_block_count: int = 4096,
    ) -> None:
        self.name = name
        self.sim = sim
        self.tracer = tracer
        self.cpu = Cpu(sim, f"{name}.cpu", tracer)
        self.alarms = AlarmManager(sim)
        self.memory = MemoryManager()
        self.memory.create_pool("app", memory_block_size, memory_block_count)
        self.rte = Rte(name, sim, tracer)
        self.controller: Optional[CanController] = None
        self.canif: Optional[CanInterface] = None
        self.pdur: Optional[PduRouter] = None
        self.com: Optional[ComStack] = None
        self.instances: dict[str, ComponentInstance] = {}
        self.tasks: dict[str, Task] = {}
        self._boot_actions: list = []
        self.booted = False

    def attach_bus(self, bus: CanBus) -> None:
        """Create the communication stack and join the CAN bus."""
        if self.controller is not None:
            raise ConfigurationError(f"ECU {self.name} already on a bus")
        self.controller = CanController(f"{self.name}.can")
        bus.attach(self.controller)
        self.canif = CanInterface(self.controller)
        self.pdur = PduRouter(self.canif)
        self.com = ComStack(self.pdur, f"{self.name}.com", sim=self.sim)
        self.rte.set_com_sender(self.com.send_signal)

    def add_instance(
        self, instance: ComponentInstance, task: Task
    ) -> None:
        """Register a component instance and its mapped OS task."""
        if instance.name in self.instances:
            raise ConfigurationError(
                f"duplicate instance {instance.name!r} on ECU {self.name}"
            )
        self.instances[instance.name] = instance
        self.tasks[instance.name] = task
        self.cpu.add_task(task)
        self.rte.register_instance(instance)

    def instance(self, name: str) -> ComponentInstance:
        """Look up a component instance by name."""
        try:
            return self.instances[name]
        except KeyError:
            raise ConfigurationError(
                f"ECU {self.name} has no instance {name!r}"
            ) from None

    def task_for(self, instance_name: str) -> Task:
        """The OS task mapped to ``instance_name``."""
        try:
            return self.tasks[instance_name]
        except KeyError:
            raise ConfigurationError(
                f"ECU {self.name} has no task for instance {instance_name!r}"
            ) from None

    def at_boot(self, action) -> None:
        """Queue an action to run when :meth:`boot` is called."""
        self._boot_actions.append(action)

    def boot(self) -> None:
        """Start the ECU: run init activations and arm periodic alarms."""
        if self.booted:
            return
        self.booted = True
        if self.tracer:
            self.tracer.emit(self.sim.now, "ecu", "boot", ecu=self.name)
        for action in self._boot_actions:
            action()

    def __repr__(self) -> str:
        return f"<Ecu {self.name} instances={len(self.instances)}>"


__all__ = ["Ecu"]
