"""AUTOSAR port interfaces: sender-receiver and client-server.

An interface is the contract attached to a port.  Sender-receiver
interfaces group named data elements; client-server interfaces group
named operations.  Interfaces are design-time, immutable objects shared
between component types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.autosar.types import DataType
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DataElement:
    """One named, typed element of a sender-receiver interface.

    ``queued`` selects AUTOSAR's event semantics (a receive queue) over
    the default last-is-best data semantics.
    """

    name: str
    dtype: DataType
    queued: bool = False
    queue_length: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("data element needs a non-empty name")
        if self.queued and self.queue_length <= 0:
            raise ConfigurationError(
                f"queued element {self.name} needs a positive queue length"
            )


@dataclass(frozen=True)
class Operation:
    """One operation of a client-server interface.

    ``arguments`` maps argument names to types in call order;
    ``result`` is the return type (None for fire-and-forget).
    """

    name: str
    arguments: tuple[tuple[str, DataType], ...] = ()
    result: Optional[DataType] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("operation needs a non-empty name")


class PortInterface:
    """Base class for port interfaces."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("interface needs a non-empty name")
        self.name = name

    def compatible_with(self, other: "PortInterface") -> bool:
        """Structural compatibility check used when wiring connectors."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SenderReceiverInterface(PortInterface):
    """Data-oriented interface: a set of typed data elements."""

    def __init__(self, name: str, elements: Sequence[DataElement]) -> None:
        super().__init__(name)
        if not elements:
            raise ConfigurationError(
                f"sender-receiver interface {name} needs >= 1 element"
            )
        names = [e.name for e in elements]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate element names in interface {name}: {names}"
            )
        self.elements: tuple[DataElement, ...] = tuple(elements)
        self._by_name = {e.name: e for e in self.elements}

    def element(self, name: str) -> DataElement:
        """Look up an element by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(
                f"interface {self.name} has no element {name!r}"
            ) from None

    def has_element(self, name: str) -> bool:
        return name in self._by_name

    def compatible_with(self, other: PortInterface) -> bool:
        """Same element names, types, and queueing discipline."""
        if not isinstance(other, SenderReceiverInterface):
            return False
        if len(self.elements) != len(other.elements):
            return False
        for mine in self.elements:
            if not other.has_element(mine.name):
                return False
            theirs = other.element(mine.name)
            if mine.dtype.name != theirs.dtype.name:
                return False
            if mine.queued != theirs.queued:
                return False
        return True


class ClientServerInterface(PortInterface):
    """Operation-oriented interface: a set of callable operations."""

    def __init__(self, name: str, operations: Sequence[Operation]) -> None:
        super().__init__(name)
        if not operations:
            raise ConfigurationError(
                f"client-server interface {name} needs >= 1 operation"
            )
        names = [o.name for o in operations]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate operation names in interface {name}: {names}"
            )
        self.operations: tuple[Operation, ...] = tuple(operations)
        self._by_name = {o.name: o for o in self.operations}

    def operation(self, name: str) -> Operation:
        """Look up an operation by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(
                f"interface {self.name} has no operation {name!r}"
            ) from None

    def has_operation(self, name: str) -> bool:
        return name in self._by_name

    def compatible_with(self, other: PortInterface) -> bool:
        """Same operation names and argument/result type names."""
        if not isinstance(other, ClientServerInterface):
            return False
        if len(self.operations) != len(other.operations):
            return False
        for mine in self.operations:
            if not other.has_operation(mine.name):
                return False
            theirs = other.operation(mine.name)
            mine_sig = [(n, t.name) for n, t in mine.arguments]
            their_sig = [(n, t.name) for n, t in theirs.arguments]
            if mine_sig != their_sig:
                return False
            mine_res = mine.result.name if mine.result else None
            their_res = theirs.result.name if theirs.result else None
            if mine_res != their_res:
                return False
        return True


__all__ = [
    "DataElement",
    "Operation",
    "PortInterface",
    "SenderReceiverInterface",
    "ClientServerInterface",
]
