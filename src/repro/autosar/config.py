"""Description-file serialization of system models.

AUTOSAR methodology revolves around description files (ARXML) processed
by tooling.  This module provides the equivalent: a documented,
versioned dict schema for :class:`SystemDescription` (and the component
types it references), with loss-checked round-tripping.  Component
*behaviour* (runnable bodies, operation handlers) is code, not data, so
types are resolved against a :class:`ComponentTypeRegistry` at load
time — exactly as AUTOSAR descriptions reference code delivered
separately.
"""

from __future__ import annotations

from typing import Any

from repro.autosar.events import (
    DataReceivedEvent,
    InitEvent,
    OperationInvokedEvent,
    RteEvent,
    TimingEvent,
)
from repro.autosar.interfaces import (
    ClientServerInterface,
    DataElement,
    Operation,
    PortInterface,
    SenderReceiverInterface,
)
from repro.autosar.ports import PortDirection, PortPrototype
from repro.autosar.swc import ComponentType
from repro.autosar.system import SystemDescription
from repro.autosar.types import lookup_type
from repro.errors import ConfigurationError

SCHEMA_VERSION = 1


class ComponentTypeRegistry:
    """Maps component type names to their code-bearing objects."""

    def __init__(self) -> None:
        self._types: dict[str, ComponentType] = {}

    def register(self, ctype: ComponentType) -> ComponentType:
        if ctype.name in self._types and self._types[ctype.name] is not ctype:
            raise ConfigurationError(
                f"conflicting registration for component type {ctype.name!r}"
            )
        self._types[ctype.name] = ctype
        return ctype

    def resolve(self, name: str) -> ComponentType:
        try:
            return self._types[name]
        except KeyError:
            raise ConfigurationError(
                f"component type {name!r} not registered"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._types


# -- interfaces ---------------------------------------------------------------


def dump_interface(interface: PortInterface) -> dict[str, Any]:
    """Serialize a port interface to the dict schema."""
    if isinstance(interface, SenderReceiverInterface):
        return {
            "kind": "sender-receiver",
            "name": interface.name,
            "elements": [
                {
                    "name": e.name,
                    "type": e.dtype.name,
                    "queued": e.queued,
                    "queue_length": e.queue_length,
                }
                for e in interface.elements
            ],
        }
    if isinstance(interface, ClientServerInterface):
        return {
            "kind": "client-server",
            "name": interface.name,
            "operations": [
                {
                    "name": o.name,
                    "arguments": [[n, t.name] for n, t in o.arguments],
                    "result": o.result.name if o.result else None,
                }
                for o in interface.operations
            ],
        }
    raise ConfigurationError(f"unknown interface class {type(interface)}")


def load_interface(data: dict[str, Any]) -> PortInterface:
    """Inverse of :func:`dump_interface`."""
    kind = data.get("kind")
    if kind == "sender-receiver":
        return SenderReceiverInterface(
            data["name"],
            [
                DataElement(
                    e["name"],
                    lookup_type(e["type"]),
                    queued=e.get("queued", False),
                    queue_length=e.get("queue_length", 16),
                )
                for e in data["elements"]
            ],
        )
    if kind == "client-server":
        return ClientServerInterface(
            data["name"],
            [
                Operation(
                    o["name"],
                    tuple(
                        (n, lookup_type(t)) for n, t in o.get("arguments", [])
                    ),
                    lookup_type(o["result"]) if o.get("result") else None,
                )
                for o in data["operations"]
            ],
        )
    raise ConfigurationError(f"unknown interface kind {kind!r}")


# -- component types (structure only) ------------------------------------------


def dump_component_type(ctype: ComponentType) -> dict[str, Any]:
    """Serialize a component type's structure (not its behaviour)."""
    return {
        "name": ctype.name,
        "ports": [
            {
                "name": p.name,
                "direction": p.direction.value,
                "interface": dump_interface(p.interface),
            }
            for p in ctype.ports
        ],
        "runnables": [
            {"name": r.name, "execution_time_us": r.execution_time_us}
            for r in ctype.runnables
        ],
        "events": [_dump_event(e) for e in ctype.events],
    }


def _dump_event(event: RteEvent) -> dict[str, Any]:
    if isinstance(event, TimingEvent):
        return {
            "kind": "timing",
            "runnable": event.runnable,
            "period_us": event.period_us,
            "offset_us": event.offset_us,
        }
    if isinstance(event, DataReceivedEvent):
        return {
            "kind": "data-received",
            "runnable": event.runnable,
            "port": event.port,
            "element": event.element,
        }
    if isinstance(event, OperationInvokedEvent):
        return {
            "kind": "operation-invoked",
            "runnable": event.runnable,
            "port": event.port,
            "operation": event.operation,
        }
    if isinstance(event, InitEvent):
        return {"kind": "init", "runnable": event.runnable}
    raise ConfigurationError(f"unknown event class {type(event)}")


def structure_matches(ctype: ComponentType, data: dict[str, Any]) -> bool:
    """Whether a registered type's structure matches its description."""
    return dump_component_type(ctype) == data


# -- system description ------------------------------------------------------------


def dump_system(description: SystemDescription) -> dict[str, Any]:
    """Serialize a system description to the dict schema."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": description.name,
        "can_bitrate": description.can_bitrate,
        "ecus": [
            {
                "name": e.name,
                "on_bus": e.on_bus,
                "memory_block_size": e.memory_block_size,
                "memory_block_count": e.memory_block_count,
            }
            for e in description.ecus.values()
        ],
        "components": [
            {
                "instance": p.instance_name,
                "type": p.ctype.name,
                "ecu": p.ecu_name,
                "task": {
                    "name": p.task.task_name,
                    "priority": p.task.priority,
                    "preemptable": p.task.preemptable,
                },
            }
            for p in description.placements.values()
        ],
        "connectors": [
            {
                "from": [c.from_instance, c.from_port],
                "to": [c.to_instance, c.to_port],
            }
            for c in description.connectors
        ],
        "component_types": [
            dump_component_type(ctype)
            for ctype in _distinct_types(description)
        ],
    }


def _distinct_types(description: SystemDescription) -> list[ComponentType]:
    seen: dict[str, ComponentType] = {}
    for placement in description.placements.values():
        seen.setdefault(placement.ctype.name, placement.ctype)
    return list(seen.values())


def load_system(
    data: dict[str, Any], registry: ComponentTypeRegistry
) -> SystemDescription:
    """Reconstruct a system description, resolving types via ``registry``.

    Each embedded component-type description must structurally match
    the registered type of the same name — catching drift between the
    description files and the delivered code, the classical AUTOSAR
    integration failure mode.
    """
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported system schema version {version!r}"
        )
    for type_data in data.get("component_types", []):
        name = type_data["name"]
        ctype = registry.resolve(name)
        if not structure_matches(ctype, type_data):
            raise ConfigurationError(
                f"registered component type {name!r} does not match its "
                f"description (structure drift)"
            )
    description = SystemDescription(data.get("name", "system"))
    description.can_bitrate = data.get("can_bitrate", 500_000)
    for ecu in data.get("ecus", []):
        description.add_ecu(
            ecu["name"],
            on_bus=ecu.get("on_bus", True),
            memory_block_size=ecu.get("memory_block_size", 256),
            memory_block_count=ecu.get("memory_block_count", 4096),
        )
    for comp in data.get("components", []):
        placement = description.add_component(
            comp["instance"],
            registry.resolve(comp["type"]),
            comp["ecu"],
            priority=comp.get("task", {}).get("priority", 5),
            preemptable=comp.get("task", {}).get("preemptable", True),
        )
        task_name = comp.get("task", {}).get("name")
        if task_name:
            placement.task.task_name = task_name
    for connector in data.get("connectors", []):
        from_instance, from_port = connector["from"]
        to_instance, to_port = connector["to"]
        description.connect(from_instance, from_port, to_instance, to_port)
    return description


__all__ = [
    "SCHEMA_VERSION",
    "ComponentTypeRegistry",
    "dump_interface",
    "load_interface",
    "dump_component_type",
    "structure_matches",
    "dump_system",
    "load_system",
]
