"""RTE events: the triggers that activate runnables.

AUTOSAR binds runnables to events; the RTE generator turns these
declarations into OS alarms (timing events) and delivery hooks
(data-received events, operation-invoked events).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RteEvent:
    """Base event: names the runnable it triggers."""

    runnable: str

    def __post_init__(self) -> None:
        if not self.runnable:
            raise ConfigurationError("event must name a runnable")


@dataclass(frozen=True)
class TimingEvent(RteEvent):
    """Periodic activation with an optional phase offset."""

    period_us: int = 10_000
    offset_us: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_us <= 0:
            raise ConfigurationError(
                f"timing event on {self.runnable} needs a positive period"
            )
        if self.offset_us < 0:
            raise ConfigurationError(
                f"timing event on {self.runnable} has a negative offset"
            )


@dataclass(frozen=True)
class DataReceivedEvent(RteEvent):
    """Activation when data arrives on a required port element."""

    port: str = ""
    element: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.port or not self.element:
            raise ConfigurationError(
                f"data-received event on {self.runnable} must name "
                f"port and element"
            )


@dataclass(frozen=True)
class OperationInvokedEvent(RteEvent):
    """Activation when a client calls an operation on a provided port."""

    port: str = ""
    operation: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.port or not self.operation:
            raise ConfigurationError(
                f"operation-invoked event on {self.runnable} must name "
                f"port and operation"
            )


@dataclass(frozen=True)
class InitEvent(RteEvent):
    """Activation once at ECU start-up, before any other event."""


__all__ = [
    "RteEvent",
    "TimingEvent",
    "DataReceivedEvent",
    "OperationInvokedEvent",
    "InitEvent",
]
