"""AUTOSAR substrate: component model, OS, BSW, RTE, system builder."""

from repro.autosar.ecu import Ecu
from repro.autosar.events import (
    DataReceivedEvent,
    InitEvent,
    OperationInvokedEvent,
    RteEvent,
    TimingEvent,
)
from repro.autosar.interfaces import (
    ClientServerInterface,
    DataElement,
    Operation,
    PortInterface,
    SenderReceiverInterface,
)
from repro.autosar.ports import (
    PortDirection,
    PortInstance,
    PortPrototype,
    provided_port,
    required_port,
)
from repro.autosar.rte import BuiltSystem, Rte, SystemBuilder, build_system
from repro.autosar.runnable import Runnable
from repro.autosar.swc import (
    ComponentInstance,
    ComponentType,
    CompositionType,
)
from repro.autosar.system import (
    EcuDescription,
    InstancePlacement,
    SystemDescription,
    TaskMapping,
)
from repro.autosar.types import (
    BOOL,
    BYTES,
    INT8,
    INT16,
    INT32,
    UINT8,
    UINT16,
    UINT32,
    BytesType,
    DataType,
    IntegerType,
    lookup_type,
)
from repro.autosar.vfb import Connector

__all__ = [
    "Ecu",
    "DataReceivedEvent",
    "InitEvent",
    "OperationInvokedEvent",
    "RteEvent",
    "TimingEvent",
    "ClientServerInterface",
    "DataElement",
    "Operation",
    "PortInterface",
    "SenderReceiverInterface",
    "PortDirection",
    "PortInstance",
    "PortPrototype",
    "provided_port",
    "required_port",
    "BuiltSystem",
    "Rte",
    "SystemBuilder",
    "build_system",
    "Runnable",
    "ComponentInstance",
    "ComponentType",
    "CompositionType",
    "EcuDescription",
    "InstancePlacement",
    "SystemDescription",
    "TaskMapping",
    "BOOL",
    "BYTES",
    "INT8",
    "INT16",
    "INT32",
    "UINT8",
    "UINT16",
    "UINT32",
    "BytesType",
    "DataType",
    "IntegerType",
    "lookup_type",
    "Connector",
]
