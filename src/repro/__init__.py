"""repro: a dynamic component model for federated AUTOSAR systems.

Reproduction of Ni, Kobetski & Axelsson, DAC 2014.  The package layers:

* :mod:`repro.sim` — deterministic discrete-event kernel.
* :mod:`repro.network`, :mod:`repro.can` — simulated networks.
* :mod:`repro.autosar` — the AUTOSAR substrate (OS, BSW, RTE, SW-Cs).
* :mod:`repro.vm` — the plug-in bytecode VM (the JVM substitute).
* :mod:`repro.core` — the dynamic component model (PIRTE, contexts, ECM).
* :mod:`repro.server` — the trusted server.
* :mod:`repro.fes` — vehicles, phones, and fleets (federation layer).
* :mod:`repro.api` — the declarative public API: compose arbitrary
  scenarios with :class:`ScenarioBuilder`, operate them through
  :class:`Platform` and unified :class:`Deployment` handles.
* :mod:`repro.campaign` — staged fleet rollouts: wave policies, canary
  waves, health gates, fault injection, automatic rollback.
* :mod:`repro.telemetry` — bounded observability: the control plane's
  ring-buffer event bus, a metrics registry, and telemetry-driven
  :class:`SoakPolicy` gates for campaigns.
* :mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.analysis`
  — experiment support.

Quickstart (the paper's demonstrator, prebuilt)::

    from repro import SECOND, build_example_platform

    platform = build_example_platform()
    platform.boot()
    platform.run(1 * SECOND)
    platform.deploy("remote-control").wait(10 * SECOND)
    platform.phone().send("Wheels", -25)
    platform.run(1 * SECOND)
    print(platform.actuator_state())

Composing your own scenario::

    from repro import ScenarioBuilder, RelayLink, ServicePort

    scenario = ScenarioBuilder(seed=7).phone("10.0.0.9:4000")
    car = scenario.vehicle("VIN-42", "my-model")
    car.ecus("ECU1", "ECU2")
    car.ecm("swc1", on="ECU1",
            relays=[RelayLink("swc2", "V0", "V1")])
    car.plugin_swc("swc2", on="ECU2",
                   relays=[RelayLink("swc1", "V2", "V3")])
    platform = scenario.build()
"""

from repro.api import (
    ApiError,
    AppBuilder,
    CampaignEngine,
    CampaignReport,
    CampaignSpec,
    Deployment,
    DeploymentTimeout,
    Disposition,
    ErrorCode,
    ExponentialWaves,
    FaultPlan,
    FixedWaves,
    FleetAPI,
    FleetSelector,
    HealthPolicy,
    InstallStatus,
    PercentageWaves,
    Platform,
    PluginSwcSpec,
    RelayLink,
    Response,
    RollbackPolicy,
    ScenarioBuilder,
    SelectorWaves,
    ServicePort,
    SoakPolicy,
    VehicleBuilder,
)
from repro.fes import (
    ExamplePlatform,
    Fleet,
    Smartphone,
    build_example_platform,
    build_fleet,
    build_fleet_from_specs,
)
from repro.sim import MS, SECOND

__version__ = "0.2.0"

__all__ = [
    "__version__",
    # declarative API
    "ScenarioBuilder",
    "VehicleBuilder",
    "AppBuilder",
    "Platform",
    "Deployment",
    "DeploymentTimeout",
    "PluginSwcSpec",
    "RelayLink",
    "ServicePort",
    "InstallStatus",
    # fleet control plane
    "ApiError",
    "ErrorCode",
    "FleetAPI",
    "FleetSelector",
    "Response",
    "SelectorWaves",
    # campaigns
    "CampaignEngine",
    "CampaignReport",
    "CampaignSpec",
    "Disposition",
    "ExponentialWaves",
    "FaultPlan",
    "FixedWaves",
    "HealthPolicy",
    "PercentageWaves",
    "RollbackPolicy",
    "SoakPolicy",
    # demonstrator + fleets
    "ExamplePlatform",
    "Fleet",
    "Smartphone",
    "build_example_platform",
    "build_fleet",
    "build_fleet_from_specs",
    # time units
    "MS",
    "SECOND",
]
