"""repro: a dynamic component model for federated AUTOSAR systems.

Reproduction of Ni, Kobetski & Axelsson, DAC 2014.  The package layers:

* :mod:`repro.sim` — deterministic discrete-event kernel.
* :mod:`repro.network`, :mod:`repro.can` — simulated networks.
* :mod:`repro.autosar` — the AUTOSAR substrate (OS, BSW, RTE, SW-Cs).
* :mod:`repro.vm` — the plug-in bytecode VM (the JVM substitute).
* :mod:`repro.core` — the dynamic component model (PIRTE, contexts, ECM).
* :mod:`repro.server` — the trusted server.
* :mod:`repro.fes` — vehicles, phones, and fleets (federation layer).
* :mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.analysis`
  — experiment support.

Quickstart::

    from repro.fes import build_example_platform
    from repro.sim import SECOND

    platform = build_example_platform()
    platform.boot()
    platform.run(1 * SECOND)
    platform.deploy_remote_control()
    platform.run(3 * SECOND)
    platform.phone.send("Wheels", -25)
    platform.run(1 * SECOND)
    print(platform.actuator_state())
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
