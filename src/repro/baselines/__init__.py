"""Baselines the paper's dynamic model is compared against."""

from repro.baselines.reflash import (
    ReflashCampaign,
    ReflashParameters,
    ota_reflash_time_us,
    workshop_reflash_time_us,
)

__all__ = [
    "ReflashCampaign",
    "ReflashParameters",
    "ota_reflash_time_us",
    "workshop_reflash_time_us",
]
