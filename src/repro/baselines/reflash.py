"""Baseline: classical static reconfiguration by ECU reflash.

"Although AUTOSAR provides a lot of flexibility in reconfiguring a
system, ... any changes require the software to be rebuilt and the ECU
to be reprogrammed" (paper Sec. 2).  This module models that baseline so
the DEPLOY experiment can compare it against dynamic plug-in
installation.

The model charges, per vehicle:

1. **download** of the full ECU image over the cellular link
   (bandwidth-limited, same channel profile as the dynamic path);
2. **flash programming** at a fixed erase+program rate;
3. **ECU reboot and bus re-synchronisation**.

Workshop reflash (no OTA capability) instead charges a fixed service
visit latency, which is the realistic pre-dynamic deployment route.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.channel import CELLULAR, ChannelProfile
from repro.sim.kernel import SECOND


@dataclass(frozen=True)
class ReflashParameters:
    """Timing model of the reflash baseline."""

    #: Full ECU image size in bytes (BSW + RTE + all ASW, rebuilt).
    image_size: int = 2 * 1024 * 1024
    #: Flash erase+program throughput, bytes per second.
    flash_rate: int = 64 * 1024
    #: ECU reboot plus bus resynchronisation time, microseconds.
    reboot_us: int = 8 * SECOND
    #: Channel used for the OTA download.
    channel: ChannelProfile = CELLULAR
    #: Protocol efficiency of the diagnostic download (UDS block
    #: transfer overheads), 0..1.
    download_efficiency: float = 0.7


def ota_reflash_time_us(params: ReflashParameters) -> int:
    """End-to-end time to OTA-reflash one ECU, in microseconds."""
    if params.channel.bytes_per_us <= 0:
        download = 0
    else:
        effective_rate = params.channel.bytes_per_us * params.download_efficiency
        download = int(round(params.image_size / effective_rate))
    download += 2 * params.channel.latency_us  # session setup
    flashing = int(round(params.image_size / params.flash_rate * SECOND))
    return download + flashing + params.reboot_us


def workshop_reflash_time_us(
    params: ReflashParameters,
    service_visit_us: int = 24 * 3600 * SECOND,
) -> int:
    """Time including the wait for a workshop visit (default: one day).

    Before OTA, reprogramming meant a service appointment; the visit
    latency dominates by orders of magnitude.
    """
    flashing = int(round(params.image_size / params.flash_rate * SECOND))
    return service_visit_us + flashing + params.reboot_us


@dataclass
class ReflashCampaign:
    """Fleet-wide reflash: one ECU image per vehicle, sequential ECUs."""

    params: ReflashParameters
    ecus_per_vehicle: int = 1

    def vehicle_time_us(self) -> int:
        """Time to reflash all of one vehicle's affected ECUs."""
        return self.ecus_per_vehicle * ota_reflash_time_us(self.params)

    def fleet_time_us(self, vehicles: int, parallelism: int = 0) -> int:
        """Campaign duration for ``vehicles`` cars.

        ``parallelism`` > 0 bounds how many vehicles download at once
        (backend capacity); 0 means fully parallel.
        """
        per_vehicle = self.vehicle_time_us()
        if parallelism <= 0 or parallelism >= vehicles:
            return per_vehicle
        waves = -(-vehicles // parallelism)
        return waves * per_vehicle


__all__ = [
    "ReflashParameters",
    "ota_reflash_time_us",
    "workshop_reflash_time_us",
    "ReflashCampaign",
]
