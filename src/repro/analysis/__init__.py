"""Analysis and reporting helpers for the benchmark harness."""

from repro.analysis.report import format_table, print_table, speedup, us_to_ms

__all__ = ["format_table", "print_table", "speedup", "us_to_ms"]
