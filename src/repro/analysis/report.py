"""Benchmark reporting: aligned text tables and series.

The benchmark harness prints the rows/series each experiment produces;
this module keeps the formatting in one place so every benchmark's
output looks the same.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    materialised = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> None:
    """Print a table (flushes so pytest -s interleaves correctly)."""
    print()
    print(format_table(headers, rows, title), flush=True)


def us_to_ms(us: float) -> float:
    """Microseconds -> milliseconds for table readability."""
    return us / 1000.0


def speedup(baseline: float, measured: float) -> float:
    """Ratio baseline/measured (>1 means measured is faster)."""
    if measured <= 0:
        return float("inf")
    return baseline / measured


__all__ = ["format_table", "print_table", "us_to_ms", "speedup"]
