"""Event tracing and metric collection for simulations.

A :class:`Tracer` records structured trace points emitted by any subsystem
(RTE writes, CAN transmissions, PIRTE installs, server pushes...).  Traces
are the raw material for the benchmark harness: latency distributions are
computed by pairing emit/deliver trace points, and the analysis layer
turns them into the tables printed by the benchmarks.
"""

from __future__ import annotations

import statistics
import warnings
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TracePoint:
    """One structured trace record.

    ``category`` groups related events (e.g. ``"rte"``, ``"can"``,
    ``"pirte"``); ``name`` is the specific event; ``data`` carries
    event-specific key/value detail.
    """

    time: int
    category: str
    name: str
    data: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.time}us {self.category}.{self.name} {self.data}>"


class Tracer:
    """Accumulates trace points and answers simple queries over them."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.points: list[TracePoint] = []
        self._counts: Counter[tuple[str, str]] = Counter()

    def emit(self, time: int, category: str, name: str, **data: Any) -> None:
        """Record one trace point (no-op when tracing is disabled)."""
        self._counts[(category, name)] += 1
        if self.enabled:
            self.points.append(TracePoint(time, category, name, data))

    def count(self, category: str, name: Optional[str] = None) -> int:
        """Number of events recorded for a category (and optional name)."""
        if name is not None:
            return self._counts[(category, name)]
        return sum(
            count for (cat, _), count in self._counts.items() if cat == category
        )

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        **filters: Any,
    ) -> list[TracePoint]:
        """Trace points matching category/name and data equality filters."""
        out = []
        for point in self.points:
            if category is not None and point.category != category:
                continue
            if name is not None and point.name != name:
                continue
            if any(point.data.get(k) != v for k, v in filters.items()):
                continue
            out.append(point)
        return out

    def clear(self) -> None:
        """Drop all recorded points and counters."""
        self.points.clear()
        self._counts.clear()

    def pair_latencies(
        self,
        start: tuple[str, str],
        end: tuple[str, str],
        key: str,
    ) -> list[int]:
        """Latencies between matching start/end points.

        Points are matched by the value of ``data[key]``; each start point
        is paired with the first subsequent end point carrying the same
        key value (FIFO matching, which suits message pipelines).
        """
        waiting: dict[Any, list[int]] = defaultdict(list)
        latencies: list[int] = []
        start_cat, start_name = start
        end_cat, end_name = end
        for point in self.points:
            if point.category == start_cat and point.name == start_name:
                waiting[point.data.get(key)].append(point.time)
            elif point.category == end_cat and point.name == end_name:
                starts = waiting.get(point.data.get(key))
                if starts:
                    latencies.append(point.time - starts.pop(0))
        return latencies


@dataclass
class LatencyStats:
    """Summary statistics over a latency sample (microseconds)."""

    count: int
    minimum: int
    maximum: int
    mean: float
    median: float
    p95: float
    stdev: float

    @classmethod
    def from_samples(cls, samples: Iterable[int]) -> "LatencyStats":
        """Compute summary stats; raises ValueError on an empty sample."""
        data = sorted(samples)
        if not data:
            raise ValueError("cannot summarise an empty latency sample")
        p95_index = min(len(data) - 1, int(round(0.95 * (len(data) - 1))))
        return cls(
            count=len(data),
            minimum=data[0],
            maximum=data[-1],
            mean=statistics.fmean(data),
            median=statistics.median(data),
            p95=float(data[p95_index]),
            stdev=statistics.pstdev(data) if len(data) > 1 else 0.0,
        )

    def as_row(self) -> dict[str, float]:
        """Dict form used by the benchmark table printer."""
        return {
            "n": self.count,
            "min_us": self.minimum,
            "mean_us": round(self.mean, 1),
            "median_us": self.median,
            "p95_us": self.p95,
            "max_us": self.maximum,
        }


class MetricSet:
    """Deprecated shim over :class:`repro.telemetry.MetricsRegistry`.

    The registry adds windowed histograms with quantiles and
    deterministic snapshots; this class keeps the legacy method names
    (``incr``/``gauge``/``sample``/``counter``/``gauge_value``) working
    for existing call sites.  New code should use the registry directly.
    """

    def __init__(self, registry=None) -> None:
        warnings.warn(
            "MetricSet is deprecated; use "
            "repro.telemetry.MetricsRegistry instead",
            DeprecationWarning,
            stacklevel=2,
        )
        # Local import: repro.sim is imported by repro.telemetry.soak,
        # so a module-level import here would be circular.
        from repro.telemetry.metrics import MetricsRegistry

        # Adopting an existing registry lets legacy call sites record
        # into the control plane's shared registry (the one
        # ``GET /v1/metrics`` and CI snapshot artifacts serve) instead
        # of a private sink that nothing ever reads.
        self._registry = registry if registry is not None else MetricsRegistry()

    @property
    def registry(self):
        """The backing :class:`~repro.telemetry.MetricsRegistry`."""
        return self._registry

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment a counter."""
        self._registry.inc(name, amount)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest value."""
        self._registry.set_gauge(name, value)

    def sample(self, name: str, value: float) -> None:
        """Append one observation to a sample series."""
        self._registry.observe(name, value)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._registry.counter_value(name)

    def gauge_value(self, name: str) -> Optional[float]:
        """Latest value of a gauge, or None."""
        return self._registry.gauge_value(name)

    def samples(self, name: str) -> list[float]:
        """All observations recorded under ``name``."""
        return self._registry.samples(name)

    def summary(self) -> dict[str, Any]:
        """Flat dict of every counter, gauge, and sample stats."""
        return self._registry.summary()

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        return iter(self.summary().items())


__all__ = ["TracePoint", "Tracer", "LatencyStats", "MetricSet"]
