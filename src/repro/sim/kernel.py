"""Deterministic discrete-event simulation kernel.

All simulated subsystems (the OSEK scheduler, the CAN bus, the network
channels, the trusted server's pusher) share one :class:`Simulator`.  Time
is an integer number of microseconds, which keeps event ordering exact and
runs reproducible across platforms.

Events scheduled for the same instant are delivered in scheduling order
(FIFO), which gives the whole stack deterministic behaviour without
relying on floating point tie-breaking.

Performance notes (this is the hottest module in the repository — a
100k-vehicle campaign pushes tens of millions of events through it):

* The event list is a binary heap of plain ``(time, seq)`` tuples, so
  ``heapq`` compares tuples in C instead of calling a generated
  ``__lt__`` on a dataclass.  Callback and label live in a side table
  keyed by ``seq``.
* Cancellation is O(1): the side-table entry is deleted and the heap
  tuple becomes a tombstone, skipped when it reaches the top.  A
  cancel-heavy workload (campaign retry timers, soak ticks) cannot
  bloat the heap: when tombstones outnumber live events the heap is
  compacted in one O(n) pass.
* :meth:`Simulator.schedule_many` amortizes validation and, for large
  batches, replaces N ``heappush`` calls with one ``heapify``.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import SimTimeError

#: One millisecond expressed in kernel time units (microseconds).
MS = 1000
#: One second expressed in kernel time units (microseconds).
SECOND = 1_000_000

#: Tombstone count below which cancel() never triggers a compaction;
#: keeps tiny simulations from heapifying on every few cancels.
_COMPACT_MIN_TOMBSTONES = 64


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holding on to the handle allows the caller to cancel the event before
    it fires.  Handles compare by their sequence number.
    """

    __slots__ = ("seq", "time", "label")

    def __init__(self, seq: int, time: int, label: str = "") -> None:
        self.seq = seq
        self.time = time
        self.label = label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EventHandle) and other.seq == self.seq

    def __hash__(self) -> int:
        return hash(self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventHandle(seq={self.seq}, time={self.time}, label={self.label!r})"


def _check_delay(delay: int, what: str) -> None:
    """Reject non-int delays — including bool, which *is* an int to
    ``isinstance`` but is virtually always a bug when passed as a time."""
    if not isinstance(delay, int) or isinstance(delay, bool):
        raise SimTimeError(f"{what} must be an int (got {delay!r})")


class Simulator:
    """Priority-queue based discrete-event simulator.

    The simulator is intentionally small: ``schedule``/``cancel``, a
    handful of run modes, and hooks for tracing.  Higher layers build
    processes, timers, and protocols on top of these primitives.
    """

    def __init__(self) -> None:
        #: Current simulated time in microseconds.  A plain attribute,
        #: not a property: hot loops across the stack read it hundreds
        #: of thousands of times per campaign, and the descriptor call
        #: is measurable.  Only the kernel writes it.
        self.now = 0
        #: Heap of (time, seq) tuples; tombstones are tuples whose seq
        #: is no longer in ``_events``.
        self._queue: list[tuple[int, int]] = []
        self._seq = itertools.count()
        #: seq -> (callback, label) for live (not fired, not cancelled)
        #: events; doubles as the handle registry.
        self._events: dict[int, tuple[Callable[[], None], str]] = {}
        self._tombstones = 0
        self.events_executed = 0

    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        ``delay`` must be a non-negative integer (bools are rejected —
        ``isinstance(True, int)`` holds, but a boolean delay is always a
        bug); zero-delay events run after all events already scheduled
        for the current instant.
        """
        if type(delay) is not int:
            _check_delay(delay, "delay")
        if delay < 0:
            raise SimTimeError(f"cannot schedule into the past (delay={delay})")
        seq = next(self._seq)
        time = self.now + delay
        self._events[seq] = (callback, label)
        heappush(self._queue, (time, seq))
        return EventHandle(seq, time, label)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if type(time) is not int:
            _check_delay(time, "time")
        if time < self.now:
            raise SimTimeError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        return self.schedule(time - self.now, callback, label)

    def schedule_many(
        self,
        items: Iterable[tuple[int, Callable[[], None]]],
        label: str = "",
    ) -> list[EventHandle]:
        """Schedule a batch of ``(delay, callback)`` pairs in one call.

        Semantically identical to calling :meth:`schedule` on each pair
        in order (FIFO ties preserved), but validation is amortized and
        a batch that is large relative to the live queue is folded in
        with one ``heapify`` instead of N sift-ups.  This is the API the
        campaign engine's wave dispatch and the soak sampler use to
        enqueue thousands of timers at once.
        """
        now = self.now
        events = self._events
        pending: list[tuple[int, int]] = []
        handles: list[EventHandle] = []
        for delay, callback in items:
            if type(delay) is not int:
                _check_delay(delay, "delay")
            if delay < 0:
                raise SimTimeError(
                    f"cannot schedule into the past (delay={delay})"
                )
            seq = next(self._seq)
            time = now + delay
            events[seq] = (callback, label)
            pending.append((time, seq))
            handles.append(EventHandle(seq, time, label))
        queue = self._queue
        if len(pending) * 4 >= len(queue):
            queue.extend(pending)
            heapify(queue)
        else:
            push = heappush
            for entry in pending:
                push(queue, entry)
        return handles

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event.  Returns True if it had not yet run.

        O(1): the heap entry stays behind as a tombstone; tombstones are
        consumed lazily when they surface, and the whole heap is
        compacted once they outnumber the live events.
        """
        if self._events.pop(handle.seq, None) is None:
            return False
        self._tombstones += 1
        if (
            self._tombstones > _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._queue)
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop every tombstone from the heap in one O(n) pass."""
        events = self._events
        self._queue = [entry for entry in self._queue if entry[1] in events]
        heapify(self._queue)
        self._tombstones = 0

    def is_pending(self, handle: EventHandle) -> bool:
        """Whether the event behind ``handle`` is still queued."""
        return handle.seq in self._events

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._events)

    def queue_size(self) -> int:
        """Physical heap length, tombstones included (observability)."""
        return len(self._queue)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        queue = self._queue
        events = self._events
        pop = heappop
        while queue:
            time, seq = pop(queue)
            item = events.pop(seq, None)
            if item is None:
                self._tombstones -= 1
                continue
            self.now = time
            self.events_executed += 1
            item[0]()
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains.  Returns events executed.

        ``max_events`` bounds runaway simulations (e.g. a periodic alarm
        with no stop condition); exceeding it raises
        :class:`SimulationError` via :class:`SimTimeError`'s parent.
        Tombstones consumed along the way never count against the
        budget (they are bookkeeping, not simulation progress) — the
        same accounting :meth:`run_until` uses.
        """
        executed = 0
        step = self.step
        while executed < max_events:
            if not step():
                return executed
            executed += 1
        raise SimTimeError(
            f"simulation did not drain within {max_events} events"
        )

    def _peek_live_time(self) -> Optional[int]:
        """Timestamp of the next live event, consuming leading tombstones."""
        queue = self._queue
        events = self._events
        while queue:
            head = queue[0]
            if head[1] in events:
                return head[0]
            heappop(queue)
            self._tombstones -= 1
        return None

    def run_until(self, time: int, max_events: int = 10_000_000) -> int:
        """Run events with timestamp <= ``time``; advance clock to ``time``.

        Events scheduled exactly at ``time`` are executed.  Returns the
        number of executed events; tombstone skips count against
        ``max_events`` exactly like :meth:`run` (that is, not at all —
        only executed events spend the budget).
        """
        if time < self.now:
            raise SimTimeError(
                f"run_until({time}) but now is already {self.now}"
            )
        executed = 0
        while True:
            head_time = self._peek_live_time()
            if head_time is None or head_time > time:
                break
            if executed >= max_events:
                raise SimTimeError(
                    f"run_until did not converge within {max_events} events"
                )
            self.step()
            executed += 1
        if time > self.now:
            self.now = time
        return executed

    def run_for(self, duration: int, max_events: int = 10_000_000) -> int:
        """Run for ``duration`` microseconds of simulated time."""
        return self.run_until(self.now + duration, max_events=max_events)


class Process:
    """A repeating activity driven by the simulator.

    Subclasses (or users providing ``body``) get a periodic callback; the
    process can be stopped and restarted.  This is the building block for
    periodic OS alarms, network pollers, and traffic generators.
    """

    __slots__ = (
        "sim",
        "period",
        "offset",
        "label",
        "_body",
        "_handle",
        "_epoch",
        "activations",
        "running",
    )

    def __init__(
        self,
        sim: Simulator,
        period: int,
        body: Optional[Callable[[], None]] = None,
        offset: int = 0,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise SimTimeError(f"process period must be positive (got {period})")
        if offset < 0:
            raise SimTimeError(f"process offset must be >= 0 (got {offset})")
        self.sim = sim
        self.period = period
        self.offset = offset
        self.label = label or type(self).__name__
        self._body = body
        self._handle: Optional[EventHandle] = None
        #: Bumped on every start()/stop(); a tick belonging to an older
        #: epoch never reschedules, so stop()+start() inside body() can
        #: not fork a second live tick chain.
        self._epoch = 0
        self.activations = 0
        self.running = False

    def body(self) -> None:
        """Action executed each period; override or pass ``body`` in."""
        if self._body is not None:
            self._body()

    def start(self) -> None:
        """Begin periodic activation ``offset`` microseconds from now."""
        if self.running:
            return
        self.running = True
        self._epoch += 1
        epoch = self._epoch
        self._handle = self.sim.schedule(
            self.offset, lambda: self._tick(epoch), self.label
        )

    def stop(self) -> None:
        """Stop the process; a queued activation is cancelled."""
        self.running = False
        self._epoch += 1
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None

    def _tick(self, epoch: int) -> None:
        if not self.running or epoch != self._epoch:
            return
        self.activations += 1
        self.body()
        # Re-check the epoch: body() may have stopped (or stopped and
        # restarted) the process.  A restart scheduled its own chain
        # under a newer epoch — rescheduling here too would double the
        # activation rate on every restart.
        if self.running and epoch == self._epoch:
            self._handle = self.sim.schedule(
                self.period, lambda: self._tick(epoch), self.label
            )


def drain(sim: Simulator, chunks: Iterable[int]) -> None:
    """Run the simulator through each duration in ``chunks`` in order.

    Convenience for tests that want to interleave assertions with
    simulated time advancing.
    """
    for chunk in chunks:
        sim.run_for(chunk)


def format_time(us: int) -> str:
    """Human-readable rendering of a kernel timestamp."""
    if us >= SECOND:
        return f"{us / SECOND:.3f}s"
    if us >= MS:
        return f"{us / MS:.3f}ms"
    return f"{us}us"


__all__ = [
    "MS",
    "SECOND",
    "EventHandle",
    "Simulator",
    "Process",
    "drain",
    "format_time",
]
