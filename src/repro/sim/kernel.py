"""Deterministic discrete-event simulation kernel.

All simulated subsystems (the OSEK scheduler, the CAN bus, the network
channels, the trusted server's pusher) share one :class:`Simulator`.  Time
is an integer number of microseconds, which keeps event ordering exact and
runs reproducible across platforms.

Events scheduled for the same instant are delivered in scheduling order
(FIFO), which gives the whole stack deterministic behaviour without
relying on floating point tie-breaking.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimTimeError

#: One millisecond expressed in kernel time units (microseconds).
MS = 1000
#: One second expressed in kernel time units (microseconds).
SECOND = 1_000_000


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holding on to the handle allows the caller to cancel the event before
    it fires.  Handles compare by identity of their sequence number.
    """

    seq: int
    time: int
    label: str


@dataclass(order=True)
class _QueueEntry:
    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class Simulator:
    """Priority-queue based discrete-event simulator.

    The simulator is intentionally small: ``schedule``/``cancel``, a
    handful of run modes, and hooks for tracing.  Higher layers build
    processes, timers, and protocols on top of these primitives.
    """

    def __init__(self) -> None:
        self._now = 0
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._handles: dict[int, _QueueEntry] = {}
        self._running = False
        self.events_executed = 0

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    def schedule(
        self,
        delay: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` microseconds from now.

        ``delay`` must be a non-negative integer; zero-delay events run
        after all events already scheduled for the current instant.
        """
        if not isinstance(delay, int):
            raise SimTimeError(f"delay must be an int (got {delay!r})")
        if delay < 0:
            raise SimTimeError(f"cannot schedule into the past (delay={delay})")
        seq = next(self._seq)
        entry = _QueueEntry(self._now + delay, seq, callback, label)
        heapq.heappush(self._queue, entry)
        self._handles[seq] = entry
        return EventHandle(seq=seq, time=entry.time, label=label)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if not isinstance(time, int):
            raise SimTimeError(f"time must be an int (got {time!r})")
        if time < self._now:
            raise SimTimeError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        return self.schedule(time - self._now, callback, label)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event.  Returns True if it had not yet run."""
        entry = self._handles.get(handle.seq)
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        del self._handles[handle.seq]
        return True

    def is_pending(self, handle: EventHandle) -> bool:
        """Whether the event behind ``handle`` is still queued."""
        entry = self._handles.get(handle.seq)
        return entry is not None and not entry.cancelled

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return len(self._handles)

    def _pop_next(self) -> Optional[_QueueEntry]:
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._handles.pop(entry.seq, None)
            return entry
        return None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        entry = self._pop_next()
        if entry is None:
            return False
        self._now = entry.time
        self.events_executed += 1
        entry.callback()
        return True

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains.  Returns events executed.

        ``max_events`` bounds runaway simulations (e.g. a periodic alarm
        with no stop condition); exceeding it raises
        :class:`SimulationError` via :class:`SimTimeError`'s parent.
        """
        executed = 0
        while executed < max_events:
            if not self.step():
                return executed
            executed += 1
        raise SimTimeError(
            f"simulation did not drain within {max_events} events"
        )

    def run_until(self, time: int, max_events: int = 10_000_000) -> int:
        """Run events with timestamp <= ``time``; advance clock to ``time``.

        Events scheduled exactly at ``time`` are executed.  Returns the
        number of events executed.
        """
        if time < self._now:
            raise SimTimeError(
                f"run_until({time}) but now is already {self._now}"
            )
        executed = 0
        while executed < max_events:
            if not self._queue:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
            executed += 1
        else:
            raise SimTimeError(
                f"run_until did not converge within {max_events} events"
            )
        self._now = max(self._now, time)
        return executed

    def run_for(self, duration: int, max_events: int = 10_000_000) -> int:
        """Run for ``duration`` microseconds of simulated time."""
        return self.run_until(self._now + duration, max_events=max_events)


class Process:
    """A repeating activity driven by the simulator.

    Subclasses (or users providing ``body``) get a periodic callback; the
    process can be stopped and restarted.  This is the building block for
    periodic OS alarms, network pollers, and traffic generators.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        body: Optional[Callable[[], None]] = None,
        offset: int = 0,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise SimTimeError(f"process period must be positive (got {period})")
        if offset < 0:
            raise SimTimeError(f"process offset must be >= 0 (got {offset})")
        self.sim = sim
        self.period = period
        self.offset = offset
        self.label = label or type(self).__name__
        self._body = body
        self._handle: Optional[EventHandle] = None
        self.activations = 0
        self.running = False

    def body(self) -> None:
        """Action executed each period; override or pass ``body`` in."""
        if self._body is not None:
            self._body()

    def start(self) -> None:
        """Begin periodic activation ``offset`` microseconds from now."""
        if self.running:
            return
        self.running = True
        self._handle = self.sim.schedule(self.offset, self._tick, self.label)

    def stop(self) -> None:
        """Stop the process; a queued activation is cancelled."""
        self.running = False
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None

    def _tick(self) -> None:
        if not self.running:
            return
        self.activations += 1
        self.body()
        if self.running:
            self._handle = self.sim.schedule(self.period, self._tick, self.label)


def drain(sim: Simulator, chunks: Iterable[int]) -> None:
    """Run the simulator through each duration in ``chunks`` in order.

    Convenience for tests that want to interleave assertions with
    simulated time advancing.
    """
    for chunk in chunks:
        sim.run_for(chunk)


def format_time(us: int) -> str:
    """Human-readable rendering of a kernel timestamp."""
    if us >= SECOND:
        return f"{us / SECOND:.3f}s"
    if us >= MS:
        return f"{us / MS:.3f}ms"
    return f"{us}us"


__all__ = [
    "MS",
    "SECOND",
    "EventHandle",
    "Simulator",
    "Process",
    "drain",
    "format_time",
]
