"""Deterministic discrete-event simulation kernel and instrumentation."""

from repro.sim.kernel import (
    MS,
    SECOND,
    EventHandle,
    Process,
    Simulator,
    drain,
    format_time,
)
from repro.sim.random import SeededStream, StreamFactory, derive_seed
from repro.sim.tracing import LatencyStats, MetricSet, TracePoint, Tracer

__all__ = [
    "MS",
    "SECOND",
    "EventHandle",
    "Process",
    "Simulator",
    "drain",
    "format_time",
    "SeededStream",
    "StreamFactory",
    "derive_seed",
    "LatencyStats",
    "MetricSet",
    "TracePoint",
    "Tracer",
]
