"""Seeded randomness helpers for reproducible simulations.

Every stochastic element (channel jitter, loss, workload generation) draws
from a :class:`SeededStream` derived from a root seed plus a string path,
so adding a new random consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, path: str) -> int:
    """Derive a 64-bit child seed from a root seed and a path string."""
    digest = hashlib.sha256(f"{root_seed}:{path}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SeededStream:
    """An isolated random stream bound to one consumer.

    Thin wrapper over :class:`random.Random` with the distributions the
    simulation layers need (jitter, Bernoulli loss, choices).
    """

    def __init__(self, root_seed: int, path: str) -> None:
        self.path = path
        self._rng = random.Random(derive_seed(root_seed, path))

    def jitter(self, base: int, spread: int) -> int:
        """``base`` +/- uniform(0, spread) microseconds, never negative."""
        if spread <= 0:
            return max(0, base)
        return max(0, base + self._rng.randint(-spread, spread))

    def chance(self, probability: float) -> bool:
        """Bernoulli draw; probability is clamped to [0, 1]."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate_us(self, mean_us: float) -> int:
        """Exponential inter-arrival time in integer microseconds."""
        if mean_us <= 0:
            return 0
        return max(0, int(round(self._rng.expovariate(1.0 / mean_us))))

    def choice(self, options: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(options)

    def sample(self, options: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements."""
        return self._rng.sample(options, k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a shuffled copy (the input list is not mutated)."""
        out = list(items)
        self._rng.shuffle(out)
        return out

    def bytes(self, n: int) -> bytes:
        """``n`` deterministic pseudo-random bytes."""
        return self._rng.randbytes(n)


class StreamFactory:
    """Creates :class:`SeededStream` children from one root seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._issued: dict[str, SeededStream] = {}

    def stream(self, path: str) -> SeededStream:
        """The stream for ``path`` (one instance per path, cached)."""
        existing = self._issued.get(path)
        if existing is None:
            existing = SeededStream(self.root_seed, path)
            self._issued[path] = existing
        return existing


__all__ = ["derive_seed", "SeededStream", "StreamFactory"]
