"""Benchmark harness configuration.

Makes the repo root importable so benchmarks can reuse the scenario
builders in ``benchmarks/_scenarios.py``, and hosts the shared
``BENCH_*.json`` section writer.
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))


def record_section(output: Path, section: str, payload) -> None:
    """Merge one section into a committed ``BENCH_*.json`` file."""
    data = {}
    if output.exists():
        data = json.loads(output.read_text())
    data[section] = payload
    output.write_text(json.dumps(data, indent=2) + "\n")
