"""Benchmark harness configuration.

Makes the repo root importable so benchmarks can reuse the scenario
builders in ``benchmarks/_scenarios.py``.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))
