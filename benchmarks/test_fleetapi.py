"""FLEETAPI — control-plane throughput on a 500-vehicle fleet.

Producer of ``BENCH_fleetapi.json`` (committed at the repo root and
uploaded as a CI artifact alongside ``BENCH_campaign.json``): quantifies
the fleet control plane's portal-facing hot paths on a synthetic
500-vehicle registry.

* ``selector_query_throughput`` — FleetSelector queries of increasing
  tree depth against the registry: queries/second and rows returned.
* ``batch_deploy_throughput`` — one ``deploy_batch`` pass over the
  whole fleet (vehicles offline: packages land in pusher outboxes),
  then the matching ``uninstall_batch``: vehicles/second and pushed
  messages.
* ``admission_check_cost`` — the admission controller screening a full
  fleet while another campaign holds half of it.
"""

import time
from pathlib import Path

from benchmarks.conftest import ROOT, record_section  # noqa: F401
from repro.analysis import print_table
from repro.network.sockets import NetworkFabric
from repro.server.server import TrustedServer
from repro.server.services import FleetSelector as S
from repro.sim import Simulator
from repro.workloads import SyntheticConfig, populate_server

FLEET_SIZE = 500
OUTPUT = Path(ROOT) / "BENCH_fleetapi.json"


def _record(section, payload):
    record_section(OUTPUT, section, payload)


def _server():
    server = TrustedServer(NetworkFabric(Simulator()))
    populate_server(
        server.api,
        SyntheticConfig(dependency_density=0.0, conflict_density=0.0),
        n_apps=5,
        n_vehicles=FLEET_SIZE,
    )
    return server


def test_selector_query_throughput():
    server = _server()
    queries = [
        ("all", S.all()),
        ("region", S.region("eu-north")),
        ("region&model", S.region("eu-north") & S.model("model-0")),
        (
            "deep-tree",
            (S.region("eu-north") | S.region("na-east"))
            & ~S.installed("app0")
            & S.healthy(),
        ),
    ]
    repetitions = 20
    rows, payload = [], []
    for name, selector in queries:
        start = time.perf_counter()
        for _ in range(repetitions):
            matched = server.api.vehicles.query(selector).unwrap()
        wall = time.perf_counter() - start
        qps = repetitions / wall
        payload.append(
            {
                "query": name,
                "fleet_size": FLEET_SIZE,
                "rows": len(matched),
                "repetitions": repetitions,
                "wall_s": round(wall, 4),
                "queries_per_s": round(qps, 1),
            }
        )
        rows.append(
            [name, len(matched), f"{qps:,.0f} q/s",
             f"{FLEET_SIZE * qps:,.0f} rows/s scanned"]
        )
    print_table(
        ["selector", "rows", "throughput", "scan rate"],
        rows,
        title=f"FLEETAPI: selector queries over {FLEET_SIZE} vehicles",
    )
    _record("selector_query_throughput", payload)


def test_batch_deploy_throughput():
    server = _server()
    vins = sorted(server.db.vehicles)
    app_name = "app0"

    start = time.perf_counter()
    results = server.api.deployments.deploy_batch("u0", vins, app_name)
    deploy_wall = time.perf_counter() - start
    accepted = sum(1 for response in results.values() if response.ok)
    assert accepted == FLEET_SIZE, {
        vin: response.reasons
        for vin, response in results.items()
        if not response.ok
    }
    queued = sum(server.pusher.pending_for(vin) for vin in vins)

    start = time.perf_counter()
    removals = server.api.deployments.uninstall_batch("u0", vins, app_name)
    uninstall_wall = time.perf_counter() - start
    assert all(response.ok for response in removals.values())

    payload = {
        "fleet_size": FLEET_SIZE,
        "accepted": accepted,
        "messages_queued": queued,
        "outbox_bytes": server.pusher.outbox_bytes,
        "deploy_wall_s": round(deploy_wall, 3),
        "deploy_vehicles_per_s": round(FLEET_SIZE / deploy_wall, 1),
        "uninstall_wall_s": round(uninstall_wall, 3),
        "uninstall_vehicles_per_s": round(FLEET_SIZE / uninstall_wall, 1),
    }
    print_table(
        ["metric", "value"],
        [[key, str(value)] for key, value in payload.items()],
        title="FLEETAPI: batch deploy/uninstall throughput",
    )
    _record("batch_deploy_throughput", payload)


def test_admission_check_cost():
    server = _server()
    vins = sorted(server.db.vehicles)
    campaigns = server.api.campaigns
    campaigns.claim("cmp-0001", vins[: FLEET_SIZE // 2])
    repetitions = 50
    start = time.perf_counter()
    for _ in range(repetitions):
        denied = campaigns.admit("cmp-0002", vins)
    wall = time.perf_counter() - start
    assert len(denied) == FLEET_SIZE // 2
    payload = {
        "fleet_size": FLEET_SIZE,
        "held_by_other_campaign": len(denied),
        "repetitions": repetitions,
        "wall_s": round(wall, 4),
        "checks_per_s": round(repetitions * FLEET_SIZE / wall, 1),
    }
    print_table(
        ["metric", "value"],
        [[key, str(value)] for key, value in payload.items()],
        title="FLEETAPI: admission screening cost",
    )
    _record("admission_check_cost", payload)
