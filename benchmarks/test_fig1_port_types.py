"""FIG1 — the dynamic component structure: port types I/II/III.

Reproduces the structural claim of paper Fig. 1: plug-ins talk to the
system through three kinds of SW-C ports, all mediated by the PIRTE.
The benchmark measures (a) the simulated end-to-end latency a plug-in
message experiences through each port type, and (b) the host-side CPU
cost of the PIRTE routing hot path.

Paper-expected shape: type III (local typed write) is cheapest, type II
adds the multiplexing header plus (cross-ECU) CAN transfer, type I adds
management-protocol decoding; all three deliver reliably.
"""

from benchmarks._scenarios import (
    build_relay_scenario,
    build_service_scenario,
    sink_latencies,
)
from repro.analysis import print_table
from repro.core.messages import DataMessage
from repro.sim import MS, LatencyStats

N_MESSAGES = 40


def _run_type_iii():
    scenario = build_service_scenario()
    system, pirte = scenario.system, scenario.pirte
    ecu = system.ecu("ecu1")
    inject_times = []
    for i in range(N_MESSAGES):
        inject_times.append(system.sim.now)
        ecu.rte.deliver_local("host", "svc_in", "value", i)
        system.sim.run_for(5 * MS)
    system.sim.run_for(20 * MS)
    return sink_latencies(scenario.sink_state, inject_times)


def _run_type_ii(cross_ecu):
    scenario = build_relay_scenario(n_port_pairs=1, cross_ecu=cross_ecu)
    system = scenario.system
    snd = scenario.pirte_a.plugin("snd")
    inject_times = []
    for i in range(N_MESSAGES):
        inject_times.append(system.sim.now)
        scenario.pirte_a.plugin_write(snd, 0, i)
        system.sim.run_for(5 * MS)
    system.sim.run_for(20 * MS)
    return sink_latencies(scenario.sink_state, inject_times)


def _run_type_i():
    """External DATA message relayed over type I to a plug-in port."""
    scenario = build_relay_scenario(n_port_pairs=1, cross_ecu=True)
    system = scenario.system
    inject_times = []
    for i in range(N_MESSAGES):
        inject_times.append(system.sim.now)
        # Management DATA delivery straight into hostb's mgmt path,
        # modelling the last hop of ECM -> SW-C type I relay.
        raw = DataMessage("ecu2", "hostb", 100, i).encode()
        system.ecu("ecu2").rte.deliver_local("hostb", "mgmt_in", "mgmt", raw)
        system.sim.run_for(5 * MS)
    system.sim.run_for(20 * MS)
    return sink_latencies(scenario.sink_state, inject_times)


def test_fig1_port_type_latencies(benchmark):
    rows = []
    lat_iii = _run_type_iii()
    rows.append(["III (service, local)"] + _row(lat_iii))
    lat_ii_local = _run_type_ii(cross_ecu=False)
    rows.append(["II (relay, same ECU)"] + _row(lat_ii_local))
    lat_ii = _run_type_ii(cross_ecu=True)
    rows.append(["II (relay, cross ECU)"] + _row(lat_ii))
    lat_i = _run_type_i()
    rows.append(["I (mgmt DATA relay)"] + _row(lat_i))
    print_table(
        ["port type", "n", "min_us", "mean_us", "p95_us", "max_us"],
        rows,
        title="FIG1: plug-in message latency by SW-C port type (simulated)",
    )
    # All four paths must deliver every message.
    assert all(len(l) == N_MESSAGES for l in (lat_iii, lat_ii, lat_i))
    # Shape: cross-ECU type II pays the CAN hop over local type III.
    assert _mean(lat_ii) > _mean(lat_iii)

    # pytest-benchmark metric: host CPU cost of the PIRTE routing hot
    # path (one plug-in write routed through a service virtual port).
    scenario = build_service_scenario(trace=False)
    plugin = scenario.pirte.plugin("fwd")

    def route_once():
        scenario.pirte.plugin_write(plugin, 1, 42)

    benchmark(route_once)


def _row(latencies):
    stats = LatencyStats.from_samples(latencies)
    return [stats.count, stats.minimum, round(stats.mean, 1),
            stats.p95, stats.maximum]


def _mean(latencies):
    return sum(latencies) / len(latencies)
