"""TELEMETRY — bus throughput under load, soak-gate cost, drop bounds.

Producer of ``BENCH_telemetry.json`` (committed at the repo root and
uploaded as a CI artifact): quantifies the observability pipeline.

* ``soak_gate_scenario`` — the acceptance scenario end to end: a
  plug-in that installs cleanly everywhere but traps during soak is
  rolled back by the :class:`~repro.telemetry.SoakPolicy`, while the
  same campaign without the anomaly promotes through every wave.
  Records each campaign's embedded metric snapshot (time-to-promote,
  rollback latency, outbox pressure, telemetry drop counts).
* ``bus_load`` — publish throughput and exact drop accounting while a
  diag storm overruns deliberately small ring buffers.
* ``registry_overhead`` — recording cost of counters and windowed
  histograms at bounded memory.
"""

import time
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import ROOT, record_section  # noqa: F401
from repro import FaultPlan, SoakPolicy
from repro.analysis import print_table
from repro.fes import canary_campaign
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.fes.fleet import build_fleet
from repro.telemetry import MetricsRegistry, TelemetryBus

APP = "remote-control"
OUTPUT = Path(ROOT) / "BENCH_telemetry.json"


def _record(section, payload):
    record_section(OUTPUT, section, payload)


def _soaked_fleet(size, seed=9):
    fleet = build_fleet(size, seed=seed)
    fleet.server.api.store.upload(
        make_remote_control_app(PHONE_ADDRESS)
    ).unwrap()
    return fleet


def _soaked_spec():
    return replace(
        canary_campaign(APP, fractions=(0.2, 1.0), max_failure_rate=0.5),
        soak=SoakPolicy(max_trap_delta=2, min_samples=2),
    )


def test_soak_gate_scenario():
    """Clean install that traps during soak: gated run vs clean run."""

    def run(faults):
        fleet = _soaked_fleet(10)
        start = time.perf_counter()
        report = fleet.run_campaign(_soaked_spec(), faults=faults)
        wall = time.perf_counter() - start
        snapshot = fleet.api.telemetry.snapshot()
        return report, wall, snapshot

    trapping = FaultPlan(
        seed=5, soak_trap_vins={"VIN-0001"}, soak_trap_count=8
    )
    gated, wall_gated, bus_gated = run(trapping)
    clean, wall_clean, bus_clean = run(None)
    replay, _, _ = run(trapping)

    assert gated.status == "rolled_back"
    assert gated.waves[0].breaches == []  # installs were clean
    assert gated.waves[0].soak_breaches  # telemetry caught it
    assert clean.status == "succeeded"
    assert gated.to_dict() == replay.to_dict()  # byte-identical replay

    payload = {
        "fleet_size": 10,
        "gated": {
            "status": gated.status,
            "rolled_back": gated.rolled_back,
            "soak_samples": gated.waves[0].soak_samples,
            "metrics": gated.metrics,
            "bus": bus_gated,
            "wall_s": round(wall_gated, 3),
        },
        "clean": {
            "status": clean.status,
            "updated": clean.updated,
            "metrics": clean.metrics,
            "bus": bus_clean,
            "wall_s": round(wall_clean, 3),
        },
        "identical_across_runs": gated.to_dict() == replay.to_dict(),
    }
    rows = [
        ["gated (trap during soak)", gated.status,
         gated.metrics["rollback_latency_us"],
         gated.metrics["telemetry"]["published"]],
        ["clean", clean.status,
         clean.metrics["rollback_latency_us"],
         clean.metrics["telemetry"]["published"]],
    ]
    print_table(
        ["campaign", "status", "rollback latency us", "events published"],
        rows,
        title="TELEMETRY: soak gate scenario (fleet of 10)",
    )
    _record("soak_gate_scenario", payload)


def test_bus_load_and_drop_accounting():
    """Diag storm against small rings: throughput + exact drop counts."""
    rows, payload = [], []
    for capacity, publishes in ((64, 20_000), (512, 20_000), (4096, 20_000)):
        bus = TelemetryBus(default_capacity=capacity)
        start = time.perf_counter()
        for i in range(publishes):
            bus.publish(
                "diag", "report", i,
                vin=f"VIN-{i % 100:04d}", traps=i % 3, memory_used_blocks=4,
            )
        wall = time.perf_counter() - start
        assert bus.published("diag") == publishes
        assert bus.retained("diag") == min(capacity, publishes)
        assert bus.dropped("diag") == publishes - bus.retained("diag")
        rate = publishes / wall if wall else float("inf")
        payload.append(
            {
                "capacity": capacity,
                "published": publishes,
                "retained": bus.retained("diag"),
                "dropped": bus.dropped("diag"),
                "wall_s": round(wall, 4),
                "events_per_s": round(rate),
            }
        )
        rows.append(
            [capacity, publishes, bus.dropped("diag"), f"{rate:,.0f}/s"]
        )
    print_table(
        ["capacity", "published", "dropped", "throughput"],
        rows,
        title="TELEMETRY: bus load (20k diag events)",
    )
    _record("bus_load", payload)


def test_registry_overhead():
    """Metric recording cost at bounded memory."""
    registry = MetricsRegistry()
    observations = 50_000
    start = time.perf_counter()
    for i in range(observations):
        registry.inc("installs")
        registry.observe("latency_us", (i * 37) % 1000, time_us=i)
    wall = time.perf_counter() - start
    assert registry.counter_value("installs") == observations
    hist = registry.histogram("latency_us")
    assert hist.count <= hist.max_samples  # ring stayed bounded
    payload = {
        "observations": observations,
        "retained_samples": hist.count,
        "wall_s": round(wall, 4),
        "ops_per_s": round(2 * observations / wall) if wall else None,
        "summary": registry.summary(),
    }
    print_table(
        ["metric", "value"],
        [[key, str(value)] for key, value in payload.items()
         if key != "summary"],
        title="TELEMETRY: registry overhead (50k observations)",
    )
    _record("registry_overhead", payload)
