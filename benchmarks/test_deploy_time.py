"""DEPLOY — dynamic plug-in installation vs classical reflash.

Quantifies the paper's headline motivation: dynamic installation
"would drastically decrease the time to market ... and even allow
feature upgrades in already produced vehicles".  The harness measures
the simulated end-to-end deployment time of the remote-control APP to
fleets of increasing size and compares against the full-ECU-reflash
baseline (OTA and workshop variants).

Paper-expected shape: plug-in installation moves kilobytes and
completes in sub-second per vehicle; a reflash moves megabytes plus a
reboot (tens of seconds OTA, a day via workshop) — a multiple-order-of-
magnitude gap that widens with image size.
"""

from benchmarks.conftest import ROOT  # noqa: F401
from repro.analysis import print_table, speedup
from repro.baselines import (
    ReflashParameters,
    ota_reflash_time_us,
    workshop_reflash_time_us,
)
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.fes.fleet import build_fleet
from repro.sim import SECOND


def deploy_fleet(size, seed=0):
    """Simulated time until the APP is ACTIVE on every vehicle."""
    fleet = build_fleet(size, seed=seed)
    fleet.server.api.store.upload(
        make_remote_control_app(PHONE_ADDRESS)
    ).unwrap()
    fleet.boot()
    fleet.sim.run_for(1 * SECOND)  # ECMs connect
    campaign = fleet.deploy_everywhere("remote-control")
    assert campaign.ok  # every VIN accepted, not just the survivors
    elapsed = campaign.wait(120 * SECOND)
    assert campaign.all_active
    assert elapsed > 0
    return elapsed, fleet


def test_deploy_dynamic_vs_reflash(benchmark):
    rows = []
    dynamic_times = {}
    for size in (1, 4, 16):
        elapsed, __ = deploy_fleet(size)
        dynamic_times[size] = elapsed
        rows.append([size, f"{elapsed / 1000:.0f} ms"])
    print_table(
        ["fleet size", "dynamic deploy (all ACTIVE)"],
        rows,
        title="DEPLOY: dynamic plug-in installation time (simulated)",
    )

    reflash_rows = []
    for image_mb in (1, 2, 8):
        params = ReflashParameters(image_size=image_mb * 1024 * 1024)
        ota = ota_reflash_time_us(params)
        workshop = workshop_reflash_time_us(params)
        dyn = dynamic_times[1]
        reflash_rows.append(
            [
                image_mb,
                f"{ota / SECOND:.1f} s",
                f"{workshop / SECOND / 3600:.1f} h",
                f"{speedup(ota, dyn):.0f}x",
            ]
        )
    print_table(
        ["image MB", "OTA reflash", "workshop reflash",
         "dynamic speedup vs OTA"],
        reflash_rows,
        title="DEPLOY: reflash baseline comparison (1 vehicle)",
    )
    # Shape assertions: who wins and by how much.
    ota_2mb = ota_reflash_time_us(ReflashParameters())
    assert dynamic_times[1] < ota_2mb / 10, (
        "dynamic install must beat OTA reflash by >10x"
    )
    # Fleet deployment parallelises: 16 vehicles take far less than
    # 16x one vehicle.
    assert dynamic_times[16] < 4 * dynamic_times[1]

    benchmark.pedantic(
        lambda: deploy_fleet(2, seed=9), rounds=3, iterations=1
    )


def test_deploy_scales_with_package_size(benchmark):
    """Install time grows with binary size (CAN transfer dominated)."""
    from repro.server.models import App, PluginDescriptor

    rows = []
    times = []
    for pad_kb in (0, 4, 16):
        fleet = build_fleet(1, seed=pad_kb)
        app = make_remote_control_app(PHONE_ADDRESS)
        if pad_kb:
            # Pad the OP binary with a trailing comment section the
            # container ignores... containers are CRC'd, so instead
            # rebuild with a larger memory hint + padded source.
            padded = _padded_app(pad_kb)
        else:
            padded = app
        fleet.server.api.store.upload(padded).unwrap()
        fleet.boot()
        fleet.sim.run_for(1 * SECOND)
        campaign = fleet.deploy_everywhere(padded.name)
        assert campaign.ok
        elapsed = campaign.wait(300 * SECOND)
        assert campaign.all_active
        assert elapsed > 0
        times.append(elapsed)
        size = padded.total_binary_size()
        rows.append([pad_kb, size, f"{elapsed / 1000:.0f} ms"])
    print_table(
        ["padding KB", "total binary bytes", "install time"],
        rows,
        title="DEPLOY: install time vs package size (simulated)",
    )
    assert times[-1] > times[0]  # bigger package, longer install

    benchmark(lambda: _padded_app(4).total_binary_size())


def _padded_app(pad_kb):
    """The remote-control APP with an artificially large OP binary."""
    from repro.fes.example_platform import OP_SOURCE
    from repro.server.models import PluginDescriptor
    from repro.vm.loader import compile_plugin

    app = make_remote_control_app(PHONE_ADDRESS)
    # Pad with NOP sleds: still a valid, CRC'd container.
    nops = "\n".join(["    NOP"] * (pad_kb * 1024))
    padded_source = OP_SOURCE + f"\n.entry padding\n{nops}\n    HALT\n"
    padded = PluginDescriptor(
        "OP",
        compile_plugin(padded_source, mem_hint=8).raw,
        app.plugins["OP"].port_names,
    )
    app.plugins["OP"] = padded
    return app
