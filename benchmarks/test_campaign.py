"""CAMPAIGN — staged-rollout scaling, canary cost, breach determinism.

Producer of ``BENCH_campaign.json`` (committed at the repo root and
uploaded as a CI artifact): quantifies the campaign engine along the
three ROADMAP axes.

* ``fleet_size_sweep`` — wall/simulated time to update whole fleets,
  per wave policy: one blast wave, fixed-size waves, and a percentage
  canary ladder.  Staging costs simulated time (gates serialize waves)
  but not meaningful wall time — the event-driven engine does no
  per-vehicle busy-waiting.
* ``canary_fraction_sweep`` — how the canary's size changes end-to-end
  rollout time on one fleet.
* ``breach_determinism`` — the acceptance scenario: 100 vehicles,
  5% -> 25% -> 100%, seeded faults above the health threshold; the
  canary breaches, promotion halts, the wave rolls back, and two runs
  produce byte-identical reports.
* ``statistical_scale_sweep`` — multi-fidelity headroom: one campaign
  spanning fleets the full ECU/VM simulation cannot reach, with a
  10-vehicle full-fidelity canary ahead of a statistical tail.
"""

import time
from dataclasses import replace
from pathlib import Path

from benchmarks.conftest import ROOT, record_section  # noqa: F401
from repro import FaultPlan, FixedWaves, PercentageWaves
from repro.analysis import print_table
from repro.fes import canary_campaign
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.fes.fleet import build_fleet

APP = "remote-control"
OUTPUT = Path(ROOT) / "BENCH_campaign.json"


def _record(section, payload):
    record_section(OUTPUT, section, payload)


def _campaign(size, spec, faults=None, seed=3, repeats=1):
    """Run one campaign; with ``repeats`` > 1, report the best wall time.

    Minimum-of-repeats is the robust wall-clock estimator on shared CI
    hosts — the simulation is deterministic, so every repeat does
    identical work and the spread is pure scheduler noise.
    """
    walls = []
    for __ in range(repeats):
        fleet = build_fleet(size, seed=seed)
        fleet.server.api.store.upload(
            make_remote_control_app(PHONE_ADDRESS)
        ).unwrap()
        start = time.perf_counter()
        report = fleet.run_campaign(spec, faults=faults)
        walls.append(time.perf_counter() - start)
    return report, min(walls)


def test_fleet_size_sweep_per_wave_policy():
    policies = [
        ("blast", lambda size: FixedWaves(size)),
        ("fixed-10", lambda size: FixedWaves(10)),
        ("canary-pct", lambda size: PercentageWaves((0.1, 0.5, 1.0))),
    ]
    rows, payload = [], []
    for policy_name, make_policy in policies:
        for size in (10, 25, 50):
            spec = replace(canary_campaign(APP), waves=make_policy(size))
            report, wall = _campaign(size, spec, repeats=3)
            assert report.status == "succeeded"
            assert report.updated == size
            sim_time = report.finished_us - report.started_us
            payload.append(
                {
                    "policy": policy_name,
                    "fleet_size": size,
                    "waves": len(report.waves),
                    "sim_time_us": sim_time,
                    "wall_s": round(wall, 3),
                    "updated": report.updated,
                }
            )
            rows.append(
                [policy_name, size, len(report.waves),
                 f"{sim_time / 1000:.0f} ms", f"{wall:.2f} s"]
            )
    print_table(
        ["policy", "fleet", "waves", "sim time", "wall"],
        rows,
        title="CAMPAIGN: fleet-size sweep per wave policy",
    )
    _record("fleet_size_sweep", payload)


def test_canary_fraction_sweep():
    rows, payload = [], []
    for fraction in (0.1, 0.2, 0.4):
        spec = canary_campaign(APP, fractions=(fraction, 1.0))
        report, wall = _campaign(30, spec)
        assert report.status == "succeeded" and report.updated == 30
        sim_time = report.finished_us - report.started_us
        canary_size = len(report.waves[0].vins)
        payload.append(
            {
                "canary_fraction": fraction,
                "canary_size": canary_size,
                "sim_time_us": sim_time,
                "wall_s": round(wall, 3),
            }
        )
        rows.append(
            [fraction, canary_size, f"{sim_time / 1000:.0f} ms",
             f"{wall:.2f} s"]
        )
    print_table(
        ["canary fraction", "canary size", "sim time", "wall"],
        rows,
        title="CAMPAIGN: canary fraction sweep (fleet of 30)",
    )
    _record("canary_fraction_sweep", payload)


def test_breach_determinism():
    """The acceptance scenario, twice: identical reports, halted spread."""

    def run():
        spec = canary_campaign(
            APP, fractions=(0.05, 0.25, 1.0),
            max_failure_rate=0.1, retry_budget=0,
        )
        faults = FaultPlan(seed=13, install_failure_rate=0.5)
        return _campaign(100, spec, faults=faults)

    first, wall_a = run()
    second, wall_b = run()
    assert first.status == "rolled_back"
    assert first.waves[0].breaches  # the canary gate tripped
    assert first.waves[1].started_us is None  # promotion halted
    assert first.to_dict() == second.to_dict()
    payload = {
        "fleet_size": 100,
        "canary_fraction": 0.05,
        "status": first.status,
        "failed": first.waves[0].failed,
        "rolled_back": first.rolled_back,
        "needs_workshop": first.needs_workshop,
        "skipped": first.skipped,
        "event_count": len(first.events),
        "identical_across_runs": first.to_dict() == second.to_dict(),
        "wall_s": [round(wall_a, 3), round(wall_b, 3)],
    }
    print_table(
        ["metric", "value"],
        [[key, str(value)] for key, value in payload.items()],
        title="CAMPAIGN: canary breach determinism (100 vehicles)",
    )
    _record("breach_determinism", payload)


def test_statistical_scale_sweep():
    """Mixed-fidelity campaigns at fleet sizes well past the full-sim
    ceiling: 10 full vehicles canary, statistical tail behind them."""
    full = 10
    rows, payload = [], []
    for size in (1_000, 10_000):
        build_start = time.perf_counter()
        fleet = build_fleet(size, seed=3, full_vehicles=full)
        build_wall = time.perf_counter() - build_start
        fleet.server.api.store.upload(
            make_remote_control_app(PHONE_ADDRESS)
        ).unwrap()
        spec = replace(
            canary_campaign(APP),
            waves=PercentageWaves((full / size, 1.0)),
        )
        start = time.perf_counter()
        report = fleet.run_campaign(spec)
        wall = time.perf_counter() - start
        assert report.status == "succeeded"
        assert report.updated == size
        # The canary wave is exactly the full-fidelity prefix.
        assert report.waves[0].vins == fleet.vins[:full]
        sim_time = report.finished_us - report.started_us
        payload.append(
            {
                "fleet_size": size,
                "full_vehicles": full,
                "waves": len(report.waves),
                "sim_time_us": sim_time,
                # Build wall is reported separately so the sweep
                # distinguishes fleet-construction cost from run cost.
                "fleet_build_wall_s": round(build_wall, 3),
                "wall_s": round(wall, 3),
                "updated": report.updated,
            }
        )
        rows.append(
            [size, full, len(report.waves), f"{sim_time / 1000:.0f} ms",
             f"{build_wall:.2f} s", f"{wall:.2f} s"]
        )
    print_table(
        ["fleet", "full", "waves", "sim time", "build", "wall"],
        rows,
        title="CAMPAIGN: statistical fleet scale sweep",
    )
    _record("statistical_scale_sweep", payload)
