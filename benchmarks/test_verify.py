"""VERIFY — static-verifier throughput on synthetic and real binaries.

Producer of ``BENCH_verify.json`` (committed at the repo root and
uploaded as a CI artifact): quantifies the cost the upload gate adds
to every APP upload and campaign pre-flight.

* ``verify_size_sweep`` — wall-clock (min of 3) for verifying
  synthetic binaries from ~32 to ~4096 instructions, with basic-block
  structure (call/branch/join every few instructions) so the stack
  and fuel analyses do real work, not a single straight-line pass.
* ``example_plugins`` — the reference plug-ins the repo ships, each
  verified with the limits the upload gate derives for it; pins that
  they stay clean and records per-binary latency.
"""

import time
from pathlib import Path

from benchmarks.conftest import ROOT, record_section  # noqa: F401
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.vm.loader import compile_plugin, unpack
from repro.vm.verify import VerifyLimits, verify_binary

OUTPUT = Path(ROOT) / "BENCH_verify.json"

REPEATS = 3


def _record(section, payload):
    record_section(OUTPUT, section, payload)


def _synthetic_source(blocks):
    """~8 instructions per block: compute, a CALL, a diamond join."""
    lines = [".entry on_message"]
    for i in range(blocks):
        lines += [
            f"b{i}:",
            "    PUSH 7",
            "    ADD",
            f"    CALL helper",
            f"    JZ skip{i}",
            "    PUSH 1",
            f"    JMP join{i}",
            f"skip{i}:",
            "    PUSH 2",
            f"join{i}:",
        ]
    lines += ["    POP", "    HALT", "helper:", "    PUSH 3", "    ADD", "    RET"]
    return "\n".join(lines) + "\n"


def _timed_verify(binary, limits):
    best = float("inf")
    report = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = verify_binary(binary, limits)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_verify_size_sweep():
    rows = []
    for blocks in (4, 32, 128, 512):
        binary = compile_plugin(_synthetic_source(blocks), mem_hint=16)
        report = verify_binary(binary, VerifyLimits(num_ports=4))
        wall, report = _timed_verify(binary, VerifyLimits(num_ports=4))
        rows.append(
            {
                "blocks": blocks,
                "instructions": report.instruction_count,
                "code_bytes": report.code_size,
                "wall_s": round(wall, 6),
                "findings": len(report.findings),
                "verdict": report.verdict,
            }
        )
        assert report.ok, report.summary()
    # Cost grows roughly linearly with code size: the largest binary
    # must not be pathologically slower per instruction than the
    # smallest (guards against an accidental quadratic fixpoint).
    per_ins = [r["wall_s"] / r["instructions"] for r in rows]
    assert per_ins[-1] < per_ins[0] * 50 + 1e-4
    _record("verify_size_sweep", rows)


def test_example_plugins():
    app = make_remote_control_app(PHONE_ADDRESS)
    rows = []
    for name in sorted(app.plugins):
        descriptor = app.plugins[name]
        binary = unpack(descriptor.binary)
        limits = VerifyLimits(num_ports=len(descriptor.port_names))
        wall, report = _timed_verify(binary, limits)
        rows.append(
            {
                "plugin": name,
                "instructions": report.instruction_count,
                "wall_s": round(wall, 6),
                "verdict": report.verdict,
                "entry_fuel": {
                    entry: bound
                    for entry, bound in sorted(report.entry_fuel.items())
                },
            }
        )
        assert report.clean, f"{name}: {report.summary()}"
    _record("example_plugins", rows)
