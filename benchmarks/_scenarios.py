"""Scenario builders shared by the benchmark suite.

Each builder returns a ready-to-measure system plus the handles the
benchmarks poke.  All scenarios are deterministic (seeded).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autosar import (
    ComponentType,
    DataElement,
    DataReceivedEvent,
    Runnable,
    SenderReceiverInterface,
    SystemDescription,
    INT16,
    build_system,
    provided_port,
    required_port,
)
from repro.core import (
    EMPTY_ECC,
    Ecc,
    EccEntry,
    InstallMessage,
    LinkKind,
    Pic,
    Plc,
    PlcLink,
    PortInit,
    PluginSwcSpec,
    RelayLink,
    ServicePort,
    get_pirte,
)
from repro.core.plugin_swc import make_plugin_swc_type
from repro.sim import MS, SECOND, Simulator, Tracer
from repro.vm.loader import compile_plugin

FORWARD_SOURCE = """
.entry on_message
    WRPORT 1
    HALT
"""

MOTION_IF = SenderReceiverInterface(
    "BenchMotionIf", [DataElement("value", INT16, queued=True, queue_length=64)]
)


def make_sink_type() -> ComponentType:
    def consume(instance):
        while instance.pending("in", "value"):
            instance.state.setdefault("got", []).append(
                (instance.rte.sim.now, instance.receive("in", "value"))
            )

    return ComponentType(
        "BenchSink",
        ports=[required_port("in", MOTION_IF)],
        runnables=[Runnable("consume", consume, execution_time_us=10)],
        events=[DataReceivedEvent("consume", port="in", element="value")],
    )


def install_message(name, ecu, swc, ports, links, source=FORWARD_SOURCE,
                    ecc=EMPTY_ECC, mem_hint=16):
    return InstallMessage(
        plugin_name=name,
        version="1.0",
        target_ecu=ecu,
        target_swc=swc,
        pic=Pic(tuple(PortInit(n, i) for n, i in ports)),
        plc=Plc(tuple(links)),
        ecc=ecc,
        binary=compile_plugin(source, mem_hint=mem_hint).raw,
    )


@dataclass
class RelayScenario:
    """Two plug-in SW-Cs on two ECUs joined by one type II pair."""

    system: object
    pirte_a: object
    pirte_b: object
    sink_state: dict


def build_relay_scenario(n_port_pairs: int = 1, cross_ecu: bool = True,
                         trace: bool = True) -> RelayScenario:
    """Sender plug-in on SW-C A, receiver on SW-C B, N multiplexed pairs."""
    spec_a = PluginSwcSpec(
        "BenchHostA",
        relays=[RelayLink(peer="hostb", out_virtual="V0", in_virtual="V1")],
    )
    spec_b = PluginSwcSpec(
        "BenchHostB",
        relays=[RelayLink(peer="hosta", out_virtual="V0", in_virtual="V3")],
        services=[ServicePort("VS", "svc_out", "out", INT16)],
    )
    desc = SystemDescription("bench-relay")
    desc.add_ecu("ecu1")
    ecu_b = "ecu2" if cross_ecu else "ecu1"
    if cross_ecu:
        desc.add_ecu("ecu2")
    desc.add_component("hosta", make_plugin_swc_type(spec_a), "ecu1")
    desc.add_component("hostb", make_plugin_swc_type(spec_b), ecu_b)
    desc.add_component("sink", make_sink_type(), ecu_b, priority=6)
    desc.connect("hosta", "p2p_hostb_out", "hostb", "p2p_hosta_in")
    desc.connect("hostb", "p2p_hosta_out", "hosta", "p2p_hostb_in")
    desc.connect("hostb", "svc_out", "sink", "in")
    system = build_system(desc, tracer=Tracer(enabled=trace))
    system.boot_all()
    system.sim.run_for(10 * MS)

    pirte_a = get_pirte(system.instance("hosta"))
    pirte_b = get_pirte(system.instance("hostb"))
    n = n_port_pairs
    receiver = install_message(
        "rcv", ecu_b, "hostb",
        ports=[(f"in{i}", 100 + i) for i in range(n)] + [("out", 400)],
        links=[PlcLink(400, LinkKind.VIRTUAL, "VS")],
        source=FORWARD_SOURCE.replace("WRPORT 1", f"WRPORT {n}"),
    )
    sender = install_message(
        "snd", "ecu1", "hosta",
        ports=[(f"out{i}", 300 + i) for i in range(n)],
        links=[
            PlcLink(300 + i, LinkKind.VIRTUAL_REMOTE, "V0", 100 + i)
            for i in range(n)
        ],
    )
    assert pirte_b.install(receiver).ok
    assert pirte_a.install(sender).ok
    system.sim.run_for(10 * MS)
    return RelayScenario(
        system, pirte_a, pirte_b,
        system.instance("sink").state,
    )


@dataclass
class ServiceScenario:
    """One plug-in SW-C with a forwarding plug-in behind service ports."""

    system: object
    pirte: object
    sink_state: dict


def build_service_scenario(trace: bool = True) -> ServiceScenario:
    spec = PluginSwcSpec(
        "BenchServiceHost",
        services=[
            ServicePort("VIN_", "svc_in", "in", INT16),
            ServicePort("VOUT", "svc_out", "out", INT16),
        ],
    )
    desc = SystemDescription("bench-service")
    desc.add_ecu("ecu1")
    desc.add_component("host", make_plugin_swc_type(spec), "ecu1")
    desc.add_component("sink", make_sink_type(), "ecu1", priority=6)
    desc.connect("host", "svc_out", "sink", "in")
    system = build_system(desc, tracer=Tracer(enabled=trace))
    system.boot_all()
    system.sim.run_for(10 * MS)
    pirte = get_pirte(system.instance("host"))
    message = install_message(
        "fwd", "ecu1", "host",
        ports=[("in", 0), ("out", 1)],
        links=[
            PlcLink(0, LinkKind.VIRTUAL, "VIN_"),
            PlcLink(1, LinkKind.VIRTUAL, "VOUT"),
        ],
    )
    assert pirte.install(message).ok
    system.sim.run_for(10 * MS)
    return ServiceScenario(system, pirte, system.instance("sink").state)


def sink_latencies(sink_state: dict, inject_times: list[int]) -> list[int]:
    """Pair injected timestamps with sink arrival times (FIFO)."""
    arrivals = [t for t, __ in sink_state.get("got", [])]
    return [
        arrival - injected
        for injected, arrival in zip(inject_times, arrivals)
    ]
