"""GATEWAY — concurrent HTTP clients against one simulated fleet.

Producer of ``BENCH_gateway.json`` (committed at the repo root and
uploaded as a CI artifact): quantifies the HTTP gateway's ability to
multiplex many portal clients onto the single-threaded simulator.

* ``concurrent_query_throughput`` — 120 threaded :class:`FleetClient`
  instances hammer the pumped query route concurrently; reports
  request throughput and wall-clock latency quantiles.  Every request
  crosses worker thread -> command queue -> sim-thread pump -> response
  event, so the latencies measure the full marshalling path.
* ``deploy_throughput`` — concurrent batch deploys over HTTP to
  disjoint VIN slices, acked end to end by the simulated vehicles.
* ``event_stream_fanout`` — one campaign observed live by a mix of
  healthy and deliberately slow (tiny-buffer) stream consumers; the
  broker must fan out to all of them, evict from the slow ones, and
  account for every event exactly: ``unaccounted`` stays 0 while
  ``dropped`` is non-zero for the slow clients by construction.
"""

import statistics
import threading
import time
from pathlib import Path

from benchmarks.conftest import ROOT, record_section  # noqa: F401
from repro import SoakPolicy, build_fleet
from repro.analysis import print_table
from repro.fes import canary_campaign
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.gateway import FleetClient, FleetGateway

APP = "remote-control"
OUTPUT = Path(ROOT) / "BENCH_gateway.json"

#: The acceptance floor: the gateway must serve at least this many
#: concurrent clients (scripts/check_bench.py gates on the recorded
#: number).
CONCURRENT_CLIENTS = 120


def _record(section, payload):
    record_section(OUTPUT, section, payload)


def _served_fleet(size=20, seed=3):
    fleet = build_fleet(size, seed=seed, regions=("eu-north", "na-east"))
    fleet.server.api.store.upload(
        make_remote_control_app(PHONE_ADDRESS)
    ).unwrap()
    gateway = FleetGateway(fleet).start(drive=True)
    return fleet, gateway


def _quantile(samples, q):
    data = sorted(samples)
    return data[min(len(data) - 1, int(round(q * (len(data) - 1))))]


def test_concurrent_query_throughput():
    fleet, gateway = _served_fleet()
    requests_per_client = 4
    latencies = []
    errors = []
    lock = threading.Lock()
    start_gun = threading.Event()

    def worker():
        client = FleetClient(gateway.base_url)
        mine = []
        start_gun.wait()
        try:
            for _ in range(requests_per_client):
                t0 = time.perf_counter()
                rows = client.vehicles()
                mine.append(time.perf_counter() - t0)
                assert len(rows) == 20
        except Exception as exc:  # noqa: BLE001 - tallied below
            with lock:
                errors.append(repr(exc))
            return
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=worker) for _ in range(CONCURRENT_CLIENTS)
    ]
    try:
        for thread in threads:
            thread.start()
        wall_start = time.perf_counter()
        start_gun.set()
        for thread in threads:
            thread.join(timeout=120.0)
        wall = time.perf_counter() - wall_start
    finally:
        gateway.stop()

    assert not errors, errors[:3]
    total = CONCURRENT_CLIENTS * requests_per_client
    assert len(latencies) == total
    payload = {
        "clients": CONCURRENT_CLIENTS,
        "requests_per_client": requests_per_client,
        "requests": total,
        "wall_s": round(wall, 3),
        "rps": round(total / wall, 1),
        "p50_ms": round(_quantile(latencies, 0.50) * 1000, 2),
        "p95_ms": round(_quantile(latencies, 0.95) * 1000, 2),
        "max_ms": round(max(latencies) * 1000, 2),
        "mean_ms": round(statistics.fmean(latencies) * 1000, 2),
        "errors": len(errors),
    }
    print_table(
        ["metric", "value"],
        [[key, str(value)] for key, value in payload.items()],
        title="GATEWAY: concurrent query throughput",
    )
    _record("concurrent_query_throughput", payload)


def test_deploy_throughput():
    fleet, gateway = _served_fleet()
    slices = [fleet.vins[i::4] for i in range(4)]
    outcomes = []
    lock = threading.Lock()

    def deploy(vins):
        client = FleetClient(gateway.base_url)
        outcome = client.deploy(APP, vins)
        with lock:
            outcomes.append(outcome)

    try:
        start = time.perf_counter()
        threads = [
            threading.Thread(target=deploy, args=(chunk,)) for chunk in slices
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        accept_wall = time.perf_counter() - start

        # Wait for every vehicle to ack its install end to end.
        client = FleetClient(gateway.base_url)
        deadline = time.monotonic() + 120.0
        active = 0
        while time.monotonic() < deadline:
            active = sum(
                1
                for vin in fleet.vins
                if client.deployment_status(vin, APP)["status"] == "active"
            )
            if active == len(fleet.vins):
                break
            time.sleep(0.05)
        ack_wall = time.perf_counter() - start
    finally:
        gateway.stop()

    accepted = sum(outcome["accepted"] for outcome in outcomes)
    assert accepted == len(fleet.vins)
    assert active == len(fleet.vins)
    payload = {
        "vehicles": len(fleet.vins),
        "deploy_batches": len(slices),
        "accepted": accepted,
        "accept_wall_s": round(accept_wall, 3),
        "acked_wall_s": round(ack_wall, 3),
        "vehicles_per_s": round(len(fleet.vins) / ack_wall, 1),
    }
    print_table(
        ["metric", "value"],
        [[key, str(value)] for key, value in payload.items()],
        title="GATEWAY: concurrent deploy throughput (20 vehicles)",
    )
    _record("deploy_throughput", payload)


def test_event_stream_fanout():
    import dataclasses

    fleet, gateway = _served_fleet(size=12)
    spec = dataclasses.replace(
        canary_campaign(APP, fractions=(0.25, 1.0), retry_budget=1),
        soak=SoakPolicy(max_trap_delta=2, min_samples=1),
    )

    #: (label, categories, buffer) — two consumers get buffers far
    #: smaller than the event volume, forcing counted evictions.
    consumers = (
        [("slow", ("campaign", "diag"), 4)] * 2
        + [("campaign", ("campaign",), 256)] * 3
        + [("firehose", None, 1024)] * 3
    )
    received = {}
    stop = threading.Event()

    def consume(index, categories, buffer):
        client = FleetClient(gateway.base_url)
        seen = 0
        after = -1
        while not stop.is_set():
            batch = client.poll_events(
                after=after, categories=categories,
                timeout_s=0.2, buffer=buffer,
            )
            seen += len(batch["events"])
            after = batch["next_after"]
        received[index] = seen

    threads = [
        threading.Thread(target=consume, args=(index, categories, buffer))
        for index, (_, categories, buffer) in enumerate(consumers)
    ]
    try:
        for thread in threads:
            thread.start()
        time.sleep(0.2)  # all consumers registered before staging

        driver = FleetClient(gateway.base_url)
        record = driver.stage_campaign(spec)
        deadline = time.monotonic() + 120.0
        terminal = {"succeeded", "rolled_back", "halted", "timed_out"}
        while time.monotonic() < deadline:
            record = driver.campaign(record["campaign_id"])
            if record["status"] in terminal:
                break
            time.sleep(0.05)
        assert record["status"] == "succeeded"
        time.sleep(0.5)  # drain the tail
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        stats = gateway.broker.stats()
    finally:
        stop.set()
        gateway.stop()

    # Exact accounting: every sequenced event is delivered, pending,
    # or counted as dropped — nothing vanishes.
    assert stats["unaccounted"] == 0
    slow = [s for s in stats["per_client"] if s["capacity"] == 4]
    assert slow and all(s["dropped"] > 0 for s in slow)
    healthy = [s for s in stats["per_client"] if s["capacity"] >= 256]
    assert healthy

    payload = {
        "stream_clients": stats["clients"],
        "campaign_status": record["status"],
        "seq_high_water": stats["seq"],
        "delivered_total": sum(received.values()),
        "dropped_total": stats["dropped"],
        "slow_client_drops": sum(s["dropped"] for s in slow),
        "unaccounted": stats["unaccounted"],
        "per_client": [
            {
                "client": s["client"],
                "capacity": s["capacity"],
                "enqueued": s["enqueued"],
                "delivered": s["delivered"],
                "dropped": s["dropped"],
                "unaccounted": s["unaccounted"],
            }
            for s in stats["per_client"]
        ],
    }
    print_table(
        ["client", "capacity", "enqueued", "delivered", "dropped"],
        [
            [s["client"], s["capacity"], s["enqueued"], s["delivered"],
             s["dropped"]]
            for s in payload["per_client"]
        ],
        title="GATEWAY: event-stream fanout with slow consumers",
    )
    _record("event_stream_fanout", payload)
