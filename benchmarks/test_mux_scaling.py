"""MUX — multiplexing plug-in ports over one type II SW-C port pair.

The paper claims "any number of plug-in ports can communicate through
one pair of static type II SW-C ports".  The harness sweeps the number
of multiplexed plug-in port pairs and measures delivery latency and
total throughput across one pair, plus the fixed header overhead the
recipient-id tagging costs (the ablation candidate in DESIGN.md).

Paper-expected shape: all port counts deliver fully (the claim);
per-message latency stays flat until the CAN link or the dispatch
budget saturates; header overhead is a constant 2 bytes per message.
"""

from benchmarks._scenarios import build_relay_scenario, sink_latencies
from repro.analysis import print_table
from repro.core.virtual_ports import RELAY_MESSAGE_SIZE
from repro.sim import MS, LatencyStats

ROUNDS = 12


def run_mux(n_ports, cross_ecu=True):
    scenario = build_relay_scenario(n_port_pairs=n_ports, cross_ecu=cross_ecu)
    system = scenario.system
    snd = scenario.pirte_a.plugin("snd")
    inject_times = []
    for round_no in range(ROUNDS):
        for port in range(n_ports):
            inject_times.append(system.sim.now)
            scenario.pirte_a.plugin_write(snd, port, round_no * 100 + port)
        system.sim.run_for(10 * MS)
    system.sim.run_for(100 * MS)
    got = scenario.sink_state.get("got", [])
    latencies = sink_latencies(scenario.sink_state, inject_times)
    return len(got), latencies, system


def test_mux_any_number_of_ports(benchmark):
    rows = []
    for n_ports in (1, 2, 4, 8, 16):
        delivered, latencies, system = run_mux(n_ports)
        expected = ROUNDS * n_ports
        stats = LatencyStats.from_samples(latencies)
        frames = system.bus.frames_transferred if system.bus else 0
        rows.append(
            [
                n_ports,
                f"{delivered}/{expected}",
                round(stats.mean / 1000, 2),
                round(stats.p95 / 1000, 2),
                frames,
            ]
        )
        # The paper's claim: every multiplexed message arrives.
        assert delivered == expected, (
            f"{n_ports} ports: {delivered}/{expected} delivered"
        )
    print_table(
        ["port pairs", "delivered", "mean_ms", "p95_ms", "CAN frames"],
        rows,
        title="MUX: N plug-in port pairs over ONE type II SW-C port pair",
    )

    benchmark.pedantic(lambda: run_mux(8), rounds=3, iterations=1)


def test_mux_header_overhead(benchmark):
    """Ablation: the cost of context-driven linking on the wire."""
    payload_bytes = 4  # one i32 value
    header_bytes = RELAY_MESSAGE_SIZE - payload_bytes
    rows = [
        ["payload (i32 value)", payload_bytes],
        ["recipient-id header", header_bytes],
        ["overhead fraction", f"{header_bytes / RELAY_MESSAGE_SIZE:.0%}"],
    ]
    print_table(
        ["field", "bytes"],
        rows,
        title="MUX: type II multiplexing header overhead (per message)",
    )
    assert header_bytes == 2

    from repro.core.virtual_ports import decode_relay, encode_relay

    def tag_and_strip():
        decode_relay(encode_relay(1234, -99))

    benchmark(tag_and_strip)


def test_mux_saturation_behavior(benchmark):
    """Burst beyond the dispatch budget: messages queue, none are lost
    silently — the PIRTE counts every drop."""
    scenario = build_relay_scenario(n_port_pairs=4, cross_ecu=True)
    system = scenario.system
    snd = scenario.pirte_a.plugin("snd")
    burst = 200
    for i in range(burst):
        scenario.pirte_a.plugin_write(snd, i % 4, i)
    system.sim.run_for(2000 * MS)
    delivered = len(scenario.sink_state.get("got", []))
    dropped = (
        scenario.pirte_b.dropped_messages + scenario.pirte_a.dropped_messages
    )
    overflows = sum(
        port.overflows
        for inst in (system.instance("hosta"), system.instance("hostb"))
        for port in inst.ports.values()
    )
    print_table(
        ["metric", "count"],
        [
            ["burst size", burst],
            ["delivered", delivered],
            ["PIRTE-counted drops", dropped],
            ["SW-C port overflows", overflows],
        ],
        title="MUX: burst saturation accounting",
    )
    assert delivered + dropped + overflows >= burst * 0.99

    benchmark(lambda: scenario.pirte_a.plugin_write(snd, 0, 1))
