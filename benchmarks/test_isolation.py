"""ISOLATE — plug-in best-effort execution vs built-in functionality.

The paper's plug-in SW-C "allows to execute the plug-ins under a best
effort scheme, avoiding competition for resources with the built-in
functionality" (Sec. 3.1.1).  The harness runs a hard-periodic control
runnable (high priority) on the same ECU as a plug-in SW-C, then loads
the plug-in SW-C with a runaway (infinite-loop) plug-in, and measures
the control task's completion jitter with and without the attack, and
with different VM fuel quotas.

Paper-expected shape: control-task response times are identical with
and without the runaway plug-in (the scheduler isolates by priority,
the fuel quota bounds each activation), while the plug-in's own
activations trap on fuel exhaustion.
"""

from benchmarks.conftest import ROOT  # noqa: F401
from repro.analysis import print_table
from repro.autosar import (
    ComponentType,
    Runnable,
    SystemDescription,
    TimingEvent,
    build_system,
)
from repro.core import LinkKind, PluginSwcSpec, get_pirte
from repro.core.plugin_swc import make_plugin_swc_type
from repro.sim import MS, LatencyStats

from benchmarks._scenarios import install_message

RUNAWAY = """
.entry on_timer
loop:
    JMP loop
"""

CONTROL_PERIOD = 5 * MS
RUN_FOR = 500 * MS


def make_control_type(samples):
    def control_body(instance):
        samples.append(instance.rte.sim.now)

    return ComponentType(
        "ControlLoop",
        runnables=[Runnable("control", control_body, execution_time_us=300)],
        events=[TimingEvent("control", period_us=CONTROL_PERIOD)],
    )


def run_scenario(with_runaway, fuel=20_000, host_priority=1):
    samples = []
    spec = PluginSwcSpec(
        "IsolationHost",
        fuel_per_activation=fuel,
        timer_period_us=10 * MS,
        dispatch_exec_us=2 * MS,  # the VM slice reserved per dispatch
    )
    desc = SystemDescription("bench-isolation")
    desc.add_ecu("ecu1")
    desc.add_component(
        "control", make_control_type(samples), "ecu1", priority=10
    )
    desc.add_component(
        "host", make_plugin_swc_type(spec), "ecu1", priority=host_priority
    )
    system = build_system(desc)
    system.boot_all()
    system.sim.run_for(5 * MS)
    pirte = get_pirte(system.instance("host"))
    if with_runaway:
        message = install_message(
            "bomb", "ecu1", "host", ports=[("p", 0)],
            links=[], source=RUNAWAY,
        )
        assert pirte.install(message).ok
    system.sim.run_for(RUN_FOR)
    # Completion jitter: deviation of completion from period + wcet.
    jitters = [
        abs((t - 300) % CONTROL_PERIOD)
        for t in samples
    ]
    jitters = [min(j, CONTROL_PERIOD - j) for j in jitters]
    return samples, jitters, pirte


def test_isolation_control_task_jitter(benchmark):
    rows = []
    baseline_samples, baseline_jitter, __ = run_scenario(False)
    rows.append(
        ["no plug-in load", len(baseline_samples)]
        + _jitter_row(baseline_jitter)
    )
    attack_samples, attack_jitter, pirte = run_scenario(True)
    rows.append(
        ["runaway plug-in (fuel=20k)", len(attack_samples)]
        + _jitter_row(attack_jitter)
    )
    big_samples, big_jitter, big_pirte = run_scenario(True, fuel=200_000)
    rows.append(
        ["runaway plug-in (fuel=200k)", len(big_samples)]
        + _jitter_row(big_jitter)
    )
    # Ablation: what the design PREVENTS — a misconfigured plug-in SW-C
    # placed at higher priority than the control loop.
    bad_samples, bad_jitter, __ = run_scenario(True, host_priority=11)
    rows.append(
        ["MISCONFIG: plug-in prio > control", len(bad_samples)]
        + _jitter_row(bad_jitter)
    )
    print_table(
        ["scenario", "activations", "jitter_mean_us", "jitter_max_us"],
        rows,
        title="ISOLATE: 5ms control-loop completion jitter (simulated)",
    )
    # The control task never misses an activation under attack.
    assert len(attack_samples) == len(baseline_samples)
    # And its jitter is unchanged: priority isolation holds exactly.
    assert max(attack_jitter) == max(baseline_jitter)
    # The runaway plug-in really did burn and trap.
    assert pirte.trapped_activations > 0
    assert pirte.plugin("bomb").failed_activations > 0
    # The misconfigured placement DOES disturb the control loop,
    # showing the isolation comes from the scheduling design.
    assert max(bad_jitter) > max(attack_jitter)

    benchmark.pedantic(
        lambda: run_scenario(True), rounds=3, iterations=1
    )


def _jitter_row(jitters):
    stats = LatencyStats.from_samples(jitters)
    return [round(stats.mean, 1), stats.maximum]


def test_isolation_fuel_bounds_plugin_cpu(benchmark):
    """Fuel quotas bound how much the plug-in can even attempt."""
    rows = []
    for fuel in (1_000, 20_000, 200_000):
        __, __, pirte = run_scenario(True, fuel=fuel)
        bomb = pirte.plugin("bomb")
        rows.append(
            [fuel, bomb.vm.activations, bomb.failed_activations,
             bomb.vm.total_fuel_used]
        )
        # Every runaway activation must trap — none may complete.
        assert bomb.failed_activations == bomb.vm.activations
    print_table(
        ["fuel/activation", "activations", "trapped", "total fuel burnt"],
        rows,
        title="ISOLATE: fuel quota accounting for the runaway plug-in",
    )

    benchmark(lambda: None)
