"""FIG3 — the end-to-end example application (paper Sec. 4).

Reproduces the demonstrator timeline: ECM connects to the trusted
server, the user triggers installation, packages flow to both ECUs,
acks return, and the phone then drives the car.  The harness reports
the simulated timeline of each phase and the steady-state command
latency phone -> actuator.

Paper-expected shape: installation completes in network-dominated time
(cellular RTT + CAN transfer of the OP package); steady-state commands
traverse phone -> COM -> type II -> OP -> type III in a few
dispatch periods plus one CAN hop (milliseconds, not seconds).
"""

from benchmarks.conftest import ROOT  # noqa: F401 (path setup)
from repro.analysis import print_table, us_to_ms
from repro.fes.example_platform import build_example_platform
from repro.sim import MS, SECOND, LatencyStats


def run_install_timeline(seed=0):
    """Returns (connect_us, install_us, platform)."""
    platform = build_example_platform(seed=seed)
    t0 = platform.sim.now
    platform.boot()
    platform.run(1 * MS)  # let init runnables create the PIRTEs
    # Advance until the ECM reports connected.
    while not platform.vehicle().ecm_pirte.connected:
        platform.run(10 * MS)
    connect_us = platform.sim.now - t0
    deployment = platform.deploy("remote-control")
    assert deployment.ok, deployment.reasons("VIN-0001")
    install_us = deployment.wait(60 * SECOND, step_us=10 * MS)
    assert deployment.all_active
    return connect_us, install_us, platform


def measure_command_latencies(platform, n=30):
    """Steady-state phone->actuator latency samples (simulated us)."""
    actuators = platform.vehicle().system.instance("actuators")
    latencies = []
    for i in range(n):
        sent_at = platform.sim.now
        before = len(actuators.state.get("wheels", []))
        platform.phone().send("Wheels", i - 15)
        while len(actuators.state.get("wheels", [])) == before:
            platform.run(1 * MS)
            assert platform.sim.now - sent_at < 1 * SECOND
        latencies.append(platform.sim.now - sent_at)
    return latencies


def test_fig3_install_timeline_and_command_latency(benchmark):
    connect_us, install_us, platform = run_install_timeline()
    latencies = measure_command_latencies(platform)
    stats = LatencyStats.from_samples(latencies)
    print_table(
        ["phase", "simulated time"],
        [
            ["ECM connect to trusted server", f"{us_to_ms(connect_us):.1f} ms"],
            ["deploy -> both plug-ins ACTIVE", f"{us_to_ms(install_us):.1f} ms"],
            ["command latency mean", f"{us_to_ms(stats.mean):.2f} ms"],
            ["command latency p95", f"{us_to_ms(stats.p95):.2f} ms"],
            ["command latency max", f"{us_to_ms(stats.maximum):.2f} ms"],
        ],
        title="FIG3: example application timeline (simulated)",
    )
    # Shape: install is network-dominated (sub-second at these profiles);
    # steady-state commands are tens of ms (wifi + dispatch + CAN).
    assert install_us < 2 * SECOND
    assert stats.mean < 100 * MS

    # Host-side benchmark: one full install handshake simulation.
    def full_handshake():
        run_install_timeline(seed=1)

    benchmark.pedantic(full_handshake, rounds=3, iterations=1)


def test_fig3_signal_chain_detail(benchmark):
    """Per-hop breakdown of one command through the Fig. 3 chain."""
    __, __, platform = run_install_timeline(seed=2)
    tracer = platform.tracer
    tracer.clear()
    com_vm = platform.vehicle().ecm_pirte.plugin("COM").vm
    op_vm = platform.vehicle().pirte_of("swc2").plugin("OP").vm
    vm_before = com_vm.activations + op_vm.activations
    platform.phone().send("Wheels", -12)
    platform.run(200 * MS)
    writes = tracer.select("rte", "write")
    delivers = tracer.select("rte", "deliver")
    can_tx = tracer.count("can", "tx_done")
    rows = [
        ["external deliveries (wifi)", tracer.count("net", "deliver")],
        ["plug-in VM activations", com_vm.activations + op_vm.activations - vm_before],
        ["RTE writes (both ECUs)", len(writes)],
        ["RTE deliveries", len(delivers)],
        ["CAN frames", can_tx],
    ]
    print_table(
        ["stage", "events"],
        rows,
        title="FIG3: one command's footprint through the stack",
    )
    actuated = platform.actuator_state().get("wheels")
    assert actuated == [-12]
    assert can_tx >= 1  # the type II hop crossed the bus

    benchmark(lambda: platform.phone().send("Wheels", 1))
