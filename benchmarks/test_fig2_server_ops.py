"""FIG2 / SERVER-SCALE — trusted-server operations.

Reproduces the operational side of paper Fig. 2: the server performs
compatibility checks, dependency supervision, context generation, and
package assembly as its "central point of intelligence".  The harness
measures the host-side cost of each operation and how it scales with
the store size (number of APPs, vehicles, and installed plug-ins).

Paper-expected shape: all checks are database lookups plus linear
scans over an APP's plug-ins — cheap (well under a millisecond) and
essentially flat in fleet size, which is what makes off-board
intelligence viable.
"""

import time

from repro.analysis import print_table
from repro.network.sockets import NetworkFabric
from repro.server.compatibility import check_compatibility
from repro.server.contextgen import generate_packages
from repro.server.server import TrustedServer
from repro.sim import Simulator
from repro.workloads import SyntheticConfig, populate_server


def make_server(n_apps, n_vehicles, installed_per_vehicle=0):
    server = TrustedServer(NetworkFabric(Simulator()))
    config = SyntheticConfig()
    populate_server(server.api, config, n_apps=n_apps, n_vehicles=n_vehicles)
    # Pre-install APPs (vehicles are offline: packages queue, records
    # exist, which is what the allocator and checks look at).
    free_apps = [
        a.name for a in server.db.apps.values() if not a.dependencies
    ]
    for v_index in range(n_vehicles):
        vin = f"SYNTH-{v_index:05d}"
        for app_name in free_apps[:installed_per_vehicle]:
            server.api.deployments.deploy("u0", vin, app_name)
    return server


def _first_free_app(server, not_installed_on=None):
    """A dependency-free app, optionally not yet installed on a VIN."""
    installed = set()
    if not_installed_on is not None:
        installed = set(
            server.db.vehicle(not_installed_on).conf.installed
        )
    for app in server.db.apps.values():
        if not app.dependencies and app.name not in installed:
            return app
    raise AssertionError("no dependency-free app")


def _time_op(op, repeats=30):
    start = time.perf_counter()
    for __ in range(repeats):
        op()
    return (time.perf_counter() - start) / repeats * 1e6  # us


def test_fig2_server_operations(benchmark):
    rows = []
    for n_apps, n_vehicles, installed in [
        (10, 10, 0),
        (50, 50, 3),
        (200, 200, 5),
    ]:
        server = make_server(n_apps, n_vehicles, installed)
        fresh_vin = f"SYNTH-{n_vehicles - 1:05d}"
        app = _first_free_app(server, not_installed_on=fresh_vin)
        vehicle = server.db.vehicle("SYNTH-00000")
        conf = app.conf_for_model(vehicle.model)

        compat_us = _time_op(lambda: check_compatibility(app, vehicle))
        ctxgen_us = _time_op(lambda: generate_packages(app, conf, vehicle))

        def deploy_cycle():
            result = server.api.deployments.deploy("u0", fresh_vin, app.name)
            if result.ok:
                # Roll back so the next repeat measures the same path.
                del server.db.vehicle(fresh_vin).conf.installed[app.name]

        deploy_us = _time_op(deploy_cycle, repeats=10)
        rows.append(
            [n_apps, n_vehicles, installed, round(compat_us, 1),
             round(ctxgen_us, 1), round(deploy_us, 1)]
        )
    print_table(
        ["apps", "vehicles", "installed/veh", "compat_us",
         "contextgen_us", "deploy_us"],
        rows,
        title="FIG2: server operation cost vs store size (host CPU)",
    )
    # Shape check: ops stay sub-millisecond-ish and do not blow up with
    # store size (allow a generous 50x headroom over the small store).
    assert rows[-1][3] < rows[0][3] * 50 + 1000

    # Canonical benchmark: one full compatibility check + context
    # generation on the mid-size store.
    server = make_server(50, 50, 3)
    app = _first_free_app(server)
    vehicle = server.db.vehicle("SYNTH-00001")
    conf = app.conf_for_model(vehicle.model)

    def check_and_generate():
        report = check_compatibility(app, vehicle)
        assert report.ok, report.reasons
        generate_packages(app, conf, vehicle)

    benchmark(check_and_generate)


def test_fig2_rejection_paths(benchmark):
    """Failure analysis: the server must reject fast, too."""
    server = make_server(50, 20, 2)
    vehicle = server.db.vehicle("SYNTH-00000")
    dependent = next(
        (a for a in server.db.apps.values() if a.dependencies), None
    )
    rows = []
    if dependent is not None:
        report = check_compatibility(dependent, vehicle)
        # May pass if its dependency happens to be installed; count it.
        rows.append(
            ["missing dependency", report.ok, len(report.reasons)]
        )
    from repro.server.models import App, SwConf

    wrong_model = App("wrong", "1.0", {}, [SwConf("no-such-model", ())])
    report = check_compatibility(wrong_model, vehicle)
    rows.append(["no descriptor for model", report.ok, len(report.reasons)])
    print_table(
        ["rejection path", "passed", "reasons"],
        rows,
        title="FIG2: rejection outcomes",
    )
    assert rows[-1][1] is False

    benchmark(lambda: check_compatibility(wrong_model, vehicle))
