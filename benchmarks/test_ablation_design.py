"""ABLATIONS — the design knobs behind the paper's architecture.

Three ablations over decisions DESIGN.md §5 highlights:

* **Dispatch period** — the PIRTE runs as ordinary AUTOSAR runnables;
  its period trades plug-in message latency against CPU reserved for
  the plug-in subsystem.
* **CAN bitrate** — type I package distribution is TP-over-CAN; the
  in-vehicle network bounds install speed for remote SW-Cs.
* **VM slice budget** — the execution budget reserved per dispatch
  bounds how many plug-in activations one period can drain.
"""

from benchmarks._scenarios import (
    build_service_scenario,
    install_message,
    sink_latencies,
)
from benchmarks.conftest import ROOT  # noqa: F401
from repro.analysis import print_table
from repro.autosar import SystemDescription, build_system
from repro.core import LinkKind, PlcLink, PluginSwcSpec, ServicePort, get_pirte
from repro.core.plugin_swc import make_plugin_swc_type
from repro.autosar.types import INT16
from repro.sim import MS, LatencyStats, Tracer


def run_dispatch_period(period_us, n=30):
    spec = PluginSwcSpec(
        "AblationHost",
        services=[
            ServicePort("VIN_", "svc_in", "in", INT16),
            ServicePort("VOUT", "svc_out", "out", INT16),
        ],
        dispatch_period_us=period_us,
    )
    desc = SystemDescription("ablation-dispatch")
    desc.add_ecu("ecu1")
    desc.add_component("host", make_plugin_swc_type(spec), "ecu1")
    from benchmarks._scenarios import make_sink_type

    desc.add_component("sink", make_sink_type(), "ecu1", priority=6)
    desc.connect("host", "svc_out", "sink", "in")
    system = build_system(desc, tracer=Tracer(enabled=False))
    system.boot_all()
    system.sim.run_for(10 * MS)
    pirte = get_pirte(system.instance("host"))
    message = install_message(
        "fwd", "ecu1", "host",
        ports=[("in", 0), ("out", 1)],
        links=[
            PlcLink(0, LinkKind.VIRTUAL, "VIN_"),
            PlcLink(1, LinkKind.VIRTUAL, "VOUT"),
        ],
    )
    assert pirte.install(message).ok
    system.sim.run_for(10 * MS)
    ecu = system.ecu("ecu1")
    inject_times = []
    # Inject asynchronously to the dispatch phase.
    for i in range(n):
        inject_times.append(system.sim.now)
        ecu.rte.deliver_local("host", "svc_in", "value", i)
        system.sim.run_for(7 * MS + i * 137)
    system.sim.run_for(100 * MS)
    sink_state = system.instance("sink").state
    latencies = sink_latencies(sink_state, inject_times)
    cpu = system.ecu("ecu1").cpu
    return latencies, cpu.utilization()


def test_ablation_dispatch_period(benchmark):
    rows = []
    means = {}
    for period_ms in (1, 2, 5, 10, 20):
        latencies, utilization = run_dispatch_period(period_ms * MS)
        stats = LatencyStats.from_samples(latencies)
        means[period_ms] = stats.mean
        rows.append(
            [period_ms, round(stats.mean / 1000, 2),
             round(stats.p95 / 1000, 2), f"{utilization:.1%}"]
        )
    print_table(
        ["dispatch period ms", "latency mean_ms", "p95_ms", "ECU util"],
        rows,
        title="ABLATION: PIRTE dispatch period vs latency and CPU cost",
    )
    # Finding: latency is period-INDEPENDENT because data-received
    # events activate the dispatcher on demand; the period only paces
    # background polling — so it buys back CPU, near-linearly.
    utils = [float(r[3].rstrip("%")) for r in rows]
    assert utils[0] > 2 * utils[-1]
    assert means[20] < 2 * means[1]  # latency essentially flat

    benchmark.pedantic(
        lambda: run_dispatch_period(2 * MS, n=10), rounds=3, iterations=1
    )


def run_install_at_bitrate(bitrate, payload_pad=2000):
    """Time to push a padded install package across the CAN bus."""
    from repro.core import RelayLink

    spec_a = PluginSwcSpec(
        "EcmLike",
        relays=[RelayLink(peer="hostb", out_virtual="V0", in_virtual="V1")],
    )
    spec_b = PluginSwcSpec(
        "HostBLike",
        relays=[RelayLink(peer="hosta", out_virtual="V0", in_virtual="V3")],
    )
    desc = SystemDescription("ablation-bitrate")
    desc.can_bitrate = bitrate
    desc.add_ecu("ecu1")
    desc.add_ecu("ecu2")
    desc.add_component("hosta", make_plugin_swc_type(spec_a), "ecu1")
    desc.add_component("hostb", make_plugin_swc_type(spec_b), "ecu2")
    desc.connect("hosta", "p2p_hostb_out", "hostb", "p2p_hosta_in")
    desc.connect("hostb", "p2p_hosta_out", "hosta", "p2p_hostb_in")
    # Route mgmt through a direct RTE injection on ecu2's mgmt_in, but
    # carried over the bus: connect hosta's relay to nothing; instead
    # inject the package into ecu1's COM toward hostb's mgmt port.
    # Simpler: connect a type I pair hosta->hostb like the ECM does.
    system = build_system(desc, tracer=Tracer(enabled=False))
    system.boot_all()
    system.sim.run_for(10 * MS)
    # Ship a padded package over the type II relay path as a proxy for
    # the type I CAN path (same TP segmentation, same bus).
    nops = "\n".join(["    NOP"] * payload_pad)
    source = f".entry on_message\n    WRPORT 0\n    HALT\n.entry pad\n{nops}\n    HALT\n"
    message = install_message(
        "big", "ecu2", "hostb", ports=[("p", 0)], links=[], source=source
    )
    raw = message.encode()
    start = system.sim.now
    system.ecu("ecu1").com.configure_tx_signal(
        __import__("repro.autosar.bsw.com", fromlist=["SignalConfig"]).SignalConfig(
            "pkg", 900, __import__("repro.autosar.types", fromlist=["BYTES"]).BYTES, 900
        )
    )
    system.ecu("ecu1").canif.configure_tx(900, 0x700)
    system.ecu("ecu2").com.configure_rx_signal(
        __import__("repro.autosar.bsw.com", fromlist=["SignalConfig"]).SignalConfig(
            "pkg", 900, __import__("repro.autosar.types", fromlist=["BYTES"]).BYTES, 900
        )
    )
    system.ecu("ecu2").canif.configure_rx(0x700, 900)
    done = []
    system.ecu("ecu2").com.subscribe(900, lambda v: done.append(system.sim.now))
    system.ecu("ecu1").com.send_signal(900, raw)
    system.sim.run_for(60_000 * MS)
    assert done, "package never arrived"
    return done[0] - start, len(raw)


def test_ablation_can_bitrate(benchmark):
    rows = []
    times = {}
    for kbit in (125, 250, 500, 1000):
        elapsed, size = run_install_at_bitrate(kbit * 1000)
        times[kbit] = elapsed
        rows.append(
            [kbit, size, round(elapsed / 1000, 1),
             round(size * 8 / (elapsed / 1_000_000) / 1000, 0)]
        )
    print_table(
        ["CAN kbit/s", "package bytes", "transfer ms", "goodput kbit/s"],
        rows,
        title="ABLATION: in-vehicle bitrate vs package transfer time",
    )
    # Transfer time scales inversely with bitrate (within ~20%).
    ratio = times[125] / times[500]
    assert 3.0 < ratio < 5.0

    benchmark.pedantic(
        lambda: run_install_at_bitrate(500_000, payload_pad=200),
        rounds=3, iterations=1,
    )


def test_ablation_vm_slice(benchmark):
    """max_activations_per_step bounds burst drain rate, not safety.

    The burst is queued straight into the PIRTE's activation backlog
    (as a timer-driven plug-in would), so draining is paced purely by
    the per-dispatch activation budget.
    """
    rows = []
    drain_times = {}
    burst = 96
    for cap in (4, 16, 64):
        scenario = build_service_scenario(trace=False)
        scenario.pirte.max_activations_per_step = cap
        system = scenario.system
        for i in range(burst):
            scenario.pirte.deliver_to_port(0, i)  # 'fwd' input port
        start = system.sim.now
        while scenario.pirte.backlog:
            system.sim.run_for(1 * MS)
            assert system.sim.now - start < 5000 * MS
        system.sim.run_for(20 * MS)
        delivered = len(scenario.sink_state.get("got", []))
        drain_ms = (system.sim.now - start) / 1000
        drain_times[cap] = drain_ms
        rows.append([cap, burst, delivered, round(drain_ms, 1)])
        assert delivered == burst  # nothing lost, only delayed
    print_table(
        ["activations/step", "burst", "delivered", "drain ms"],
        rows,
        title="ABLATION: VM slice budget vs burst drain time",
    )
    assert drain_times[4] > drain_times[64]  # smaller slice -> slower drain

    benchmark(lambda: None)
