#!/usr/bin/env python3
"""AST linter for the repo's two hand-defended invariants.

Every PR so far has protected the same two properties by review alone;
this makes them machine-checked:

1. **Byte-identical replay** — the simulation core must draw all
   randomness from the seeded kernel RNG and all time from simulated
   time.  Unseeded ``random.*`` calls and wall-clock reads
   (``time.time``, ``datetime.now``, ...) inside
   ``src/repro/{sim,core,campaign,fes}`` break determinism silently.
2. **Single-threaded simulator** — gateway/HTTP-worker code must reach
   the simulator only through the command pump (``pump.py``).  A direct
   ``.sim`` attribute access anywhere else in
   ``src/repro/server/gateway`` is a thread-safety hazard.

Violations are keyed ``relpath::scope::rule`` (scope = enclosing
function qualname), so entries survive line drift.  Existing,
reviewed-and-accepted occurrences live in ``scripts/lint_allowlist.txt``;
anything not listed there fails the build.  Stale allowlist entries are
reported as warnings so the list shrinks as code is cleaned up.

Usage: ``python scripts/lint_invariants.py`` (exit 1 on new violations).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ALLOWLIST = Path(__file__).resolve().parent / "lint_allowlist.txt"

#: Directories whose code must be deterministic (rule scopes 1).
DETERMINISTIC_DIRS = (
    "src/repro/sim",
    "src/repro/core",
    "src/repro/campaign",
    "src/repro/fes",
)

#: Gateway directory where ``.sim`` access is pump-only (rule scope 2).
GATEWAY_DIR = "src/repro/server/gateway"
GATEWAY_EXEMPT_FILES = ("pump.py",)

#: Dotted call names that read the wall clock.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "date.today",
    "datetime.date.today",
}

RULE_RANDOM = "unseeded-random"
RULE_WALL_CLOCK = "wall-clock"
RULE_SIM_ACCESS = "sim-access"


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Visitor(ast.NodeVisitor):
    """Collects (scope, rule, lineno, detail) violations of one file."""

    def __init__(self, deterministic: bool, gateway: bool) -> None:
        self.deterministic = deterministic
        self.gateway = gateway
        self.scope: list[str] = []
        self.violations: list[tuple[str, str, int, str]] = []

    def _scope(self) -> str:
        return ".".join(self.scope) if self.scope else "<module>"

    def _flag(self, rule: str, node: ast.AST, detail: str) -> None:
        self.violations.append((self._scope(), rule, node.lineno, detail))

    # -- scope tracking ----------------------------------------------------

    def _visit_scoped(self, node) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    visit_FunctionDef = _visit_scoped
    visit_AsyncFunctionDef = _visit_scoped
    visit_ClassDef = _visit_scoped

    # -- rules -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self.deterministic:
            name = dotted_name(node.func)
            if name is not None:
                if name.startswith("random.") and name != "random.Random":
                    self._flag(RULE_RANDOM, node, name)
                elif name in WALL_CLOCK_CALLS:
                    self._flag(RULE_WALL_CLOCK, node, name)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.gateway and node.attr == "sim":
            self._flag(
                RULE_SIM_ACCESS, node, dotted_name(node) or "<expr>.sim"
            )
        self.generic_visit(node)


def lint_file(path: Path) -> list[tuple[str, str, int, str]]:
    rel = path.relative_to(ROOT).as_posix()
    deterministic = any(rel.startswith(d + "/") for d in DETERMINISTIC_DIRS)
    gateway = (
        rel.startswith(GATEWAY_DIR + "/")
        and path.name not in GATEWAY_EXEMPT_FILES
    )
    if not deterministic and not gateway:
        return []
    tree = ast.parse(path.read_text(), filename=rel)
    visitor = Visitor(deterministic, gateway)
    visitor.visit(tree)
    return visitor.violations


def load_allowlist() -> set[str]:
    if not ALLOWLIST.exists():
        return set()
    entries = set()
    for line in ALLOWLIST.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def main() -> int:
    allowed = load_allowlist()
    used: set[str] = set()
    failures: list[str] = []
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        for scope, rule, lineno, detail in lint_file(path):
            rel = path.relative_to(ROOT).as_posix()
            key = f"{rel}::{scope}::{rule}"
            if key in allowed:
                used.add(key)
                continue
            failures.append(f"{rel}:{lineno}: [{rule}] {detail} in {scope}")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    for stale in sorted(allowed - used):
        print(f"warn: stale allowlist entry {stale}", file=sys.stderr)
    if failures:
        print(
            f"\n{len(failures)} invariant violation(s). Either fix them or, "
            f"for reviewed exceptions, add the printed key to "
            f"{ALLOWLIST.relative_to(ROOT)}.",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok   lint_invariants: no new violations "
        f"({len(used)}/{len(allowed)} allowlist entries in use)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
