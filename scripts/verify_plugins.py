#!/usr/bin/env python3
"""Statically verify every example/built-in plug-in binary.

CI runs this after the test suite: each APP factory the repo ships
(the remote-control example platform app, the cruise-filter and
federated-speed-advisory example apps, and a synthetic workload app)
is passed through the same verifier the upload gate runs.  Any
error-tier finding fails the build — the examples are the reference
plug-ins, so they must stay deployable.

Usage: ``python scripts/verify_plugins.py`` (add ``-v`` for the full
annotated reports).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.server.database import Database  # noqa: E402
from repro.server.services.appstore import AppStore  # noqa: E402
from repro.vm.loader import unpack  # noqa: E402


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        name, ROOT / "examples" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def collect_apps() -> list:
    """Every APP the repo ships as reference material."""
    from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
    from repro.workloads import SyntheticConfig, populate_server

    apps = [make_remote_control_app(PHONE_ADDRESS)]

    plugin_development = _load_example("plugin_development")
    binary_raw = plugin_development.compile_plugin(
        plugin_development.CRUISE_FILTER_SOURCE, mem_hint=8
    ).raw
    apps.append(plugin_development.make_cruise_app(binary_raw))

    federated = _load_example("federated_speed_advisory")
    apps.append(federated.make_advisory_app())

    # One synthetic workload app, uploaded through the real gate (the
    # generator calls AppStore.upload internally, so a verification
    # regression there shows up as a failed populate).
    from repro.network.sockets import NetworkFabric
    from repro.server.server import TrustedServer
    from repro.sim import Simulator

    server = TrustedServer(NetworkFabric(Simulator()))
    populate_server(server.api, SyntheticConfig(), n_apps=2, n_vehicles=0)
    apps.extend(server.db.apps[name] for name in sorted(server.db.apps))
    return apps


def main(argv: list[str]) -> int:
    verbose = "-v" in argv
    store = AppStore(Database())
    failures = 0
    for app in collect_apps():
        verification = store.verify_app(app)
        for plugin_name in sorted(verification.reports):
            report = verification.reports[plugin_name]
            status = report.verdict
            print(f"{status:>8}  {app.name}/{plugin_name}  {report.summary()}")
            if verbose or not report.ok:
                binary = unpack(app.plugins[plugin_name].binary)
                print(report.render(binary))
            if not report.ok:
                failures += 1
    if failures:
        print(f"FAIL {failures} plug-in binary(ies) failed verification",
              file=sys.stderr)
        return 1
    print("ok   verify_plugins: all example plug-ins verify")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
