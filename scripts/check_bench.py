#!/usr/bin/env python3
"""Gate CI on the committed benchmark result files.

Every ``BENCH_*.json`` the benchmark suites produce must exist at the
repo root, parse as JSON, and contain at least one non-empty section —
a benchmark that silently stopped writing its file should fail the
build, not upload an empty artifact.

On top of the structural checks, :data:`PERF_CEILINGS` turns this into
a perf guard: committed wall-clock numbers for the kernel's flagship
scenarios must stay under generous ceilings.  The ceilings catch an
order-of-magnitude regression (an accidental O(n^2) in the event loop,
tombstones piling up again), not host noise — the benchmark records
min-of-repeats and the ceilings sit ~2x above the expected value.

Usage: ``python scripts/check_bench.py [name ...]``; with no arguments,
checks the default set.
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Benchmark files CI requires (kept in sync with the suites in
#: ``benchmarks/`` that call ``record_section``).
REQUIRED = (
    "BENCH_campaign.json",
    "BENCH_fleetapi.json",
    "BENCH_gateway.json",
    "BENCH_telemetry.json",
    "BENCH_verify.json",
)

#: (file, section, row-match, field, ceiling).  Rows are matched by
#: subset: every key in the match dict must equal the row's value.
#: A section holding a single dict is treated as one row.
PERF_CEILINGS = (
    # Full-fidelity staged rollout: 50 vehicles in waves of 10.  The
    # tuple-heap kernel runs this in ~0.7s; the pre-optimization
    # engine took ~2.2s.
    (
        "BENCH_campaign.json", "fleet_size_sweep",
        {"policy": "fixed-10", "fleet_size": 50}, "wall_s", 1.5,
    ),
    # Multi-fidelity scale: 10k statistical vehicles behind a
    # 10-vehicle full-simulation canary, one campaign.
    (
        "BENCH_campaign.json", "statistical_scale_sweep",
        {"fleet_size": 10_000}, "wall_s", 15.0,
    ),
    # 120 concurrent HTTP clients against one simulated fleet: the
    # worst-case query round-trip (worker thread -> command pump ->
    # sim thread -> response) stays well under 2s even on loaded CI
    # hosts; measured p95 is ~0.2s.
    (
        "BENCH_gateway.json", "concurrent_query_throughput",
        {}, "p95_ms", 2000.0,
    ),
    # Static verification of a ~3.6k-instruction plug-in (CFG build,
    # interval stack analysis to fixpoint, fuel DFS): measured ~35ms;
    # the ceiling guards against a quadratic fixpoint sneaking in.
    (
        "BENCH_verify.json", "verify_size_sweep",
        {"blocks": 512}, "wall_s", 0.5,
    ),
)

#: Structural invariants of BENCH_gateway.json beyond perf ceilings:
#: the concurrency floor the PR promises, and the stream broker's
#: exact-accounting contract (no event may vanish untracked).
GATEWAY_MIN_CLIENTS = 100


def check_gateway(name: str, data: dict) -> list[str]:
    """Gateway-specific invariant violations."""
    if name != "BENCH_gateway.json":
        return []
    problems = []
    query = data.get("concurrent_query_throughput")
    if not isinstance(query, dict):
        problems.append(f"{name}: missing concurrent_query_throughput")
    elif query.get("clients", 0) < GATEWAY_MIN_CLIENTS:
        problems.append(
            f"{name}: only {query.get('clients')} concurrent clients "
            f"(floor {GATEWAY_MIN_CLIENTS})"
        )
    fanout = data.get("event_stream_fanout")
    if not isinstance(fanout, dict):
        problems.append(f"{name}: missing event_stream_fanout")
    else:
        if fanout.get("unaccounted") != 0:
            problems.append(
                f"{name}: {fanout.get('unaccounted')} unaccounted stream "
                f"events (accounting invariant broken)"
            )
        for client in fanout.get("per_client", []):
            if client.get("unaccounted") != 0:
                problems.append(
                    f"{name}: stream client {client.get('client')} has "
                    f"unaccounted events"
                )
    return problems


def check_perf(name: str, data: dict) -> list[str]:
    """Ceiling violations for one parsed benchmark file."""
    problems = []
    for file_name, section, match, field, ceiling in PERF_CEILINGS:
        if file_name != name:
            continue
        rows = data.get(section)
        if isinstance(rows, dict):
            rows = [rows]
        if not isinstance(rows, list):
            problems.append(f"{name}: section {section!r} missing for perf gate")
            continue
        hits = [
            row for row in rows
            if all(row.get(key) == value for key, value in match.items())
        ]
        if not hits:
            problems.append(f"{name}: no {section} row matching {match}")
            continue
        for row in hits:
            value = row.get(field)
            if not isinstance(value, (int, float)):
                problems.append(f"{name}: {section} {match} lacks {field!r}")
            elif value > ceiling:
                problems.append(
                    f"{name}: {section} {match} {field}={value} exceeds "
                    f"ceiling {ceiling} (perf regression)"
                )
    return problems


def check(name: str) -> str | None:
    """Problem description for one file, or None when it is healthy."""
    path = ROOT / name
    if not path.exists():
        return f"{name}: missing (benchmark suite did not write it)"
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        return f"{name}: unparsable JSON ({error})"
    if not isinstance(data, dict) or not data:
        return f"{name}: expected a non-empty JSON object of sections"
    empty = [section for section, payload in data.items() if not payload]
    if empty:
        return f"{name}: empty sections {empty}"
    return None


def main(argv: list[str]) -> int:
    names = argv or list(REQUIRED)
    problems = [problem for name in names if (problem := check(name))]
    for name in names:
        if not any(problem.startswith(name) for problem in problems):
            data = json.loads((ROOT / name).read_text())
            problems.extend(check_perf(name, data))
            problems.extend(check_gateway(name, data))
    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    for name in names:
        if not any(problem.startswith(name) for problem in problems):
            sections = list(json.loads((ROOT / name).read_text()))
            print(f"ok   {name}: sections {sections}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
