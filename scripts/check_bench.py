#!/usr/bin/env python3
"""Gate CI on the committed benchmark result files.

Every ``BENCH_*.json`` the benchmark suites produce must exist at the
repo root, parse as JSON, and contain at least one non-empty section —
a benchmark that silently stopped writing its file should fail the
build, not upload an empty artifact.

Usage: ``python scripts/check_bench.py [name ...]``; with no arguments,
checks the default set.
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Benchmark files CI requires (kept in sync with the suites in
#: ``benchmarks/`` that call ``record_section``).
REQUIRED = (
    "BENCH_campaign.json",
    "BENCH_fleetapi.json",
    "BENCH_telemetry.json",
)


def check(name: str) -> str | None:
    """Problem description for one file, or None when it is healthy."""
    path = ROOT / name
    if not path.exists():
        return f"{name}: missing (benchmark suite did not write it)"
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        return f"{name}: unparsable JSON ({error})"
    if not isinstance(data, dict) or not data:
        return f"{name}: expected a non-empty JSON object of sections"
    empty = [section for section, payload in data.items() if not payload]
    if empty:
        return f"{name}: empty sections {empty}"
    return None


def main(argv: list[str]) -> int:
    names = argv or list(REQUIRED)
    problems = [problem for name in names if (problem := check(name))]
    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    for name in names:
        if not any(problem.startswith(name) for problem in problems):
            sections = list(json.loads((ROOT / name).read_text()))
            print(f"ok   {name}: sections {sections}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
