#!/usr/bin/env python3
"""A federated embedded system: fleet-wide cooperative speed advisory.

The paper motivates dynamic AUTOSAR with federated embedded systems
(FES): "embedded systems in different products that cooperate with each
other".  This example builds one: several vehicles report their current
speed to an off-board advisory service through dynamically installed
plug-ins; the service computes a harmonised advisory speed and pushes it
back; a second plug-in on each vehicle applies it to the drivetrain.

Per vehicle, the APP installs three plug-ins:

* **PROBE** (SW-C 2): reads the drivetrain speed from virtual port V6
  (SpeedProv — the port the paper provisions but leaves unused) and
  relays it over the type II pair to the ECM.
* **REP** (ECM SW-C): forwards each report to the advisory service
  through its unconnected port + ECC (outbound external routing).
* **LIMIT** (SW-C 2): receives 'Advisory' messages (inbound external ->
  DATA relay over type I -> plug-in port) and writes V5 (SpeedReq).

Run:  python examples/federated_speed_advisory.py
"""

from repro import (
    RelayLink,
    ScenarioBuilder,
    ServicePort,
    Smartphone,
    build_fleet,
)
from repro.api.builder import AppBuilder
from repro.autosar.events import DataReceivedEvent, TimingEvent
from repro.autosar.interfaces import DataElement, SenderReceiverInterface
from repro.autosar.ports import provided_port, required_port
from repro.autosar.runnable import Runnable
from repro.autosar.swc import ComponentType
from repro.autosar.types import INT16
from repro.fes.vehicle import VehicleSpec
from repro.server.models import App
from repro.sim import MS, SECOND, format_time

ADVISORY_ADDRESS = "advisory.cloud.example:9000"
MODEL = "fes-sedan"

MOTION_IF = SenderReceiverInterface(
    "MotionIf", [DataElement("value", INT16, queued=True, queue_length=32)]
)

FORWARD = """
.entry on_message
    WRPORT 1
    HALT
"""


def make_drivetrain_type(initial_speed: int) -> ComponentType:
    """Legacy drivetrain: publishes speed, follows advisory commands."""

    def tick(instance):
        state = instance.state
        current = state.setdefault("speed", initial_speed)
        target = state.get("target", current)
        # First-order approach toward the commanded speed.
        if current < target:
            current = min(target, current + 2)
        elif current > target:
            current = max(target, current - 2)
        state["speed"] = current
        instance.write("speed_out", "value", current)

    def on_command(instance):
        while instance.pending("speed_cmd", "value"):
            instance.state["target"] = instance.receive("speed_cmd", "value")
            instance.state.setdefault("commands", []).append(
                instance.state["target"]
            )

    return ComponentType(
        "Drivetrain",
        ports=[
            provided_port("speed_out", MOTION_IF),
            required_port("speed_cmd", MOTION_IF),
        ],
        runnables=[
            Runnable("tick", tick, execution_time_us=30),
            Runnable("on_command", on_command, execution_time_us=15),
        ],
        events=[
            TimingEvent("tick", period_us=100 * MS, offset_us=10 * MS),
            DataReceivedEvent("on_command", port="speed_cmd", element="value"),
        ],
    )


def make_fes_vehicle_spec(vin: str, server_address: str) -> VehicleSpec:
    """A vehicle whose drivetrain speed is exposed on V6 (declarative)."""
    # Heterogeneous but deterministic initial speeds (30..70 km/h).
    initial = 30 + (sum(ord(c) for c in vin) % 5) * 10
    sedan = ScenarioBuilder(server_address=server_address).vehicle(vin, MODEL)
    sedan.ecus("ECU1", "ECU2")
    sedan.ecm(
        "swc1", on="ECU1", type_name="FesEcm",
        relays=[RelayLink(peer="swc2", out_virtual="V0", in_virtual="V1")],
    )
    sedan.plugin_swc(
        "swc2", on="ECU2", type_name="FesSwc2",
        relays=[RelayLink(peer="swc1", out_virtual="V2", in_virtual="V3")],
        services=[
            ServicePort("V5", "speed_req", "out", INT16),
            ServicePort("V6", "speed_prov", "in", INT16),
        ],
    )
    sedan.legacy("drivetrain", make_drivetrain_type(initial), on="ECU2")
    sedan.connect("drivetrain", "speed_out", "swc2", "speed_prov")
    sedan.connect("swc2", "speed_req", "drivetrain", "speed_cmd")
    return sedan.to_spec()


def make_advisory_app() -> App:
    app = AppBuilder(None, "speed-advisory", MODEL)
    app.plugin("PROBE", source=FORWARD, mem_hint=8, on="swc2",
               ports=("speed_in", "report_out"))
    app.plugin("REP", source=FORWARD, mem_hint=8, on="swc1",
               ports=("report_in", "report_ext"))
    app.plugin("LIMIT", source=FORWARD, mem_hint=8, on="swc2",
               ports=("advisory_in", "speed_cmd"))
    app.virtual("PROBE", "speed_in", "V6")
    app.wire("PROBE", "report_out", "REP", "report_in")
    app.unconnected("REP", "report_ext")
    app.unconnected("LIMIT", "advisory_in")
    app.virtual("LIMIT", "speed_cmd", "V5")
    app.external(ADVISORY_ADDRESS, "SpeedReport", "REP", "report_ext")
    app.external(ADVISORY_ADDRESS, "Advisory", "LIMIT", "advisory_in")
    return app.to_app()


def main() -> None:
    fleet_size = 4
    print(f"== building a federation of {fleet_size} vehicles ==")
    fleet = build_fleet(fleet_size, seed=11, spec_factory=make_fes_vehicle_spec)
    advisory = Smartphone(fleet.fabric, ADVISORY_ADDRESS, fleet.sim)
    fleet.server.api.store.upload(make_advisory_app()).unwrap()
    fleet.boot()
    fleet.sim.run_for(1 * SECOND)

    print("== deploying the speed-advisory APP fleet-wide ==")
    campaign = fleet.deploy_everywhere("speed-advisory")
    print(f"   accepted: {sum(r.ok for r in campaign)}/{fleet_size}")
    elapsed = campaign.wait(30 * SECOND)
    print(f"   fleet ACTIVE after {format_time(elapsed)}")

    print("== federation running: reports flow in, advisories flow out ==")
    for round_no in range(8):
        fleet.sim.run_for(1 * SECOND)
        reports = advisory.values_named("SpeedReport")
        if not reports:
            continue
        recent = reports[-fleet_size:]
        target = sum(recent) // len(recent)
        advisory.send("Advisory", target)
        print(
            f"   t={format_time(fleet.sim.now)}: {len(reports)} reports, "
            f"recent speeds {recent}, advisory -> {target}"
        )
    fleet.sim.run_for(3 * SECOND)

    print("== convergence check ==")
    speeds = [
        v.system.instance("drivetrain").state.get("speed")
        for v in fleet.vehicles
    ]
    commands = [
        len(v.system.instance("drivetrain").state.get("commands", []))
        for v in fleet.vehicles
    ]
    print(f"   drivetrain speeds: {speeds}")
    print(f"   advisory commands applied per vehicle: {commands}")
    spread = max(speeds) - min(speeds)
    print(f"   fleet speed spread: {spread} (started heterogeneous)")
    print("done.")


if __name__ == "__main__":
    main()
