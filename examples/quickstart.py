#!/usr/bin/env python3
"""Quickstart: install a plug-in into a running AUTOSAR vehicle.

Builds the paper's example platform (trusted server + smartphone + a
two-ECU model car), deploys the remote-control APP through the server's
web services, and drives the car from the phone.

Run:  python examples/quickstart.py
"""

from repro.fes import build_example_platform
from repro.sim import SECOND, format_time


def main() -> None:
    platform = build_example_platform(seed=42)

    print("== boot: ECUs start, ECM dials the trusted server ==")
    platform.boot()
    platform.run(1 * SECOND)
    print(f"   ECM connected to server: {platform.vehicle.ecm_pirte.connected}")

    print("== user clicks 'install remote-control' on the web portal ==")
    t0 = platform.sim.now
    result = platform.deploy_remote_control()
    print(f"   compatibility check passed: {result.ok}")
    print(f"   packages pushed: {result.pushed_messages}")
    platform.run(3 * SECOND)
    status = platform.server.web.installation_status(
        platform.vehicle.vin, "remote-control"
    )
    print(f"   installation status: {status.value}")
    print(f"   (wall-clock in the car's world: {format_time(platform.sim.now - t0)})")

    ecm = platform.vehicle.ecm_pirte
    pirte2 = platform.vehicle.pirte_of("swc2")
    print(f"   plug-ins on ECM SW-C:  {sorted(ecm.plugins)}")
    print(f"   plug-ins on SW-C 2:    {sorted(pirte2.plugins)}")
    print(f"   OP's PLC: {pirte2.plugin('OP').plc.describe()}")
    print(f"   COM's PLC: {ecm.plugin('COM').plc.describe()}")

    print("== drive: the phone sends Wheels/Speed commands ==")
    platform.phone.send("Wheels", -30)
    platform.phone.send("Speed", 55)
    platform.run(1 * SECOND)
    state = platform.actuator_state()
    print(f"   actuator inputs seen by the car: {state}")

    print("== uninstall through the portal ==")
    platform.server.web.uninstall(
        platform.user_id, platform.vehicle.vin, "remote-control"
    )
    platform.run(3 * SECOND)
    print(f"   plug-ins on ECM SW-C after uninstall: {sorted(ecm.plugins)}")
    print("done.")


if __name__ == "__main__":
    main()
