#!/usr/bin/env python3
"""Quickstart: declare a vehicle, deploy a plug-in APP, drive it.

Declares the paper's example system (trusted server + smartphone + a
two-ECU model car) through the public :class:`repro.ScenarioBuilder`
API — the whole car is the ~25-line declaration below — then deploys
the remote-control APP and drives the car from the phone.  Deployment
progress is tracked through the unified ``Deployment`` handle instead
of manual status polling.

Run:  python examples/quickstart.py
"""

from repro import RelayLink, ScenarioBuilder, ServicePort
from repro.autosar.types import INT16
from repro.fes.example_platform import (
    COM_SOURCE,
    OP_SOURCE,
    make_car_actuators_type,
)
from repro.sim import SECOND, format_time

PHONE = "111.22.33.44:56789"


def declare_platform() -> ScenarioBuilder:
    scenario = ScenarioBuilder(seed=42).phone(PHONE)
    scenario.user("user-1", "Example User")

    # The paper's Fig. 3 car: ECM on ECU1, plug-in SW-C on ECU2.
    car = scenario.vehicle("VIN-0001", "model-car-rpi")
    car.ecus("ECU1", "ECU2")
    car.ecm("swc1", on="ECU1",
            relays=[RelayLink(peer="swc2", out_virtual="V0", in_virtual="V1")])
    car.plugin_swc(
        "swc2", on="ECU2",
        relays=[RelayLink(peer="swc1", out_virtual="V2", in_virtual="V3")],
        services=[
            ServicePort("V4", "wheels_req", "out", INT16),
            ServicePort("V5", "speed_req", "out", INT16),
            ServicePort("V6", "speed_prov", "in", INT16),
        ],
    )
    car.legacy("actuators", make_car_actuators_type(), on="ECU2")
    car.connect("swc2", "wheels_req", "actuators", "wheels_in")
    car.connect("swc2", "speed_req", "actuators", "speed_in")
    car.connect("actuators", "speed_out", "swc2", "speed_prov")

    # The remote-control APP: COM on the ECM, OP behind the actuators.
    app = scenario.app("remote-control", "model-car-rpi")
    app.plugin("COM", source=COM_SOURCE, mem_hint=8, on="swc1",
               ports=("cmd_wheels", "cmd_speed", "out_wheels", "out_speed"))
    app.plugin("OP", source=OP_SOURCE, mem_hint=8, on="swc2",
               ports=("in_wheels", "in_speed", "act_wheels", "act_speed"))
    app.unconnected("COM", "cmd_wheels").unconnected("COM", "cmd_speed")
    app.wire("COM", "out_wheels", "OP", "in_wheels")
    app.wire("COM", "out_speed", "OP", "in_speed")
    app.virtual("OP", "act_wheels", "V4").virtual("OP", "act_speed", "V5")
    app.external(PHONE, "Wheels", "COM", "cmd_wheels")
    app.external(PHONE, "Speed", "COM", "cmd_speed")
    return scenario


def main() -> None:
    platform = declare_platform().build()

    print("== boot: ECUs start, ECM dials the trusted server ==")
    platform.boot()
    platform.run(1 * SECOND)
    car = platform.vehicle("VIN-0001")
    print(f"   ECM connected to server: {car.ecm_pirte.connected}")

    print("== user clicks 'install remote-control' on the web portal ==")
    deployment = platform.deploy("remote-control")
    print(f"   compatibility check passed: {deployment.ok}")
    print(f"   packages pushed: {deployment.result('VIN-0001').pushed_messages}")
    elapsed = deployment.wait(10 * SECOND)
    status = deployment.status("VIN-0001")
    acked, _failed, total = deployment.acks("VIN-0001")
    print(f"   installation status: {status.value} ({acked}/{total} acks)")
    print(f"   (wall-clock in the car's world: {format_time(elapsed)})")

    ecm = car.ecm_pirte
    pirte2 = car.pirte_of("swc2")
    print(f"   plug-ins on ECM SW-C:  {sorted(ecm.plugins)}")
    print(f"   plug-ins on SW-C 2:    {sorted(pirte2.plugins)}")
    print(f"   OP's PLC: {pirte2.plugin('OP').plc.describe()}")
    print(f"   COM's PLC: {ecm.plugin('COM').plc.describe()}")

    print("== drive: the phone sends Wheels/Speed commands ==")
    phone = platform.phone(PHONE)
    phone.send("Wheels", -30)
    phone.send("Speed", 55)
    platform.run(1 * SECOND)
    state = platform.actuator_state()
    print(f"   actuator inputs seen by the car: {state}")

    print("== uninstall through the portal ==")
    platform.uninstall("remote-control", vin="VIN-0001")
    platform.run(3 * SECOND)
    print(f"   plug-ins on ECM SW-C after uninstall: {sorted(ecm.plugins)}")
    print("done.")


if __name__ == "__main__":
    main()
