"""A staged OTA campaign driven entirely over HTTP.

The other examples call the control plane in process; this one talks to
it the way a real portal would — through the network gateway:

1. build a 6-vehicle fleet and upload the remote-control APP (local
   setup: the simulated world has to exist before it can be served);
2. start a :class:`~repro.gateway.FleetGateway` — a threaded stdlib
   HTTP server plus a driver thread that advances simulated time, so
   the fleet "runs" while we talk to it from outside;
3. from a :class:`~repro.gateway.FleetClient`, query the fleet, stage
   a canary campaign with a telemetry soak gate, and watch the
   campaign's own event stream live over the long-poll endpoint;
4. confirm promotion wave by wave until the report lands, then read
   the gateway's metrics — all without a single in-process FleetAPI
   call after the gateway starts.

Every HTTP body is a ``Response`` envelope in JSON; errors carry the
same :class:`ErrorCode` values ``Response.unwrap()`` raises in
process, so remote client code reads exactly like local client code.
"""

import dataclasses

from repro import SoakPolicy, build_fleet
from repro.fes import canary_campaign
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.gateway import FleetClient, FleetGateway

APP = "remote-control"
TERMINAL = {"succeeded", "rolled_back", "halted", "timed_out"}


def main() -> None:
    print("== setup: 6 vehicles + the remote-control APP (in process) ==")
    fleet = build_fleet(6, seed=11, regions=("eu-north", "na-east"))
    fleet.server.api.store.upload(
        make_remote_control_app(PHONE_ADDRESS)
    ).unwrap()

    print("== serve: HTTP gateway + simulated-time driver thread ==")
    gateway = FleetGateway(fleet).start(drive=True)
    try:
        client = FleetClient(gateway.base_url)
        health = client.health()
        print(
            f"   {gateway.base_url} -> {health['vehicles']} vehicles, "
            f"{health['apps']} app(s)"
        )

        print("== query the fleet over the wire ==")
        for row in client.vehicles():
            print(f"   {row['vin']}  {row['model']:<12} {row['region']}")

        print("== static-verification record of the APP, over HTTP ==")
        verification = client.verification(APP)
        for plugin, report in sorted(verification["reports"].items()):
            print(
                f"   {plugin}: {report['verdict']} "
                f"(fuel bounds: {report['entry_fuel']})"
            )
        assert verification["ok"], verification

        print("== stage a canary campaign with a soak gate, over HTTP ==")
        spec = dataclasses.replace(
            canary_campaign(APP, fractions=(0.34, 1.0), retry_budget=1),
            soak=SoakPolicy(max_trap_delta=2, min_samples=2),
        )
        # Register the event stream first so nothing is missed.
        poll = client.poll_events(categories=("campaign",), timeout_s=0.0)
        record = client.stage_campaign(spec)
        campaign_id = record["campaign_id"]
        print(f"   staged {campaign_id} ({record['status']})")

        print("== watch the campaign's event stream live ==")
        after = poll["next_after"]
        status = record["status"]
        while status not in TERMINAL:
            batch = client.poll_events(after=after, timeout_s=1.0)
            for event in batch["events"]:
                wave = event["data"].get("wave")
                detail = event["data"].get("detail", "")
                vin = event["vin"] or "-"
                print(
                    f"   seq={event['seq']:<3} wave={wave} "
                    f"{event['name']:<18} {vin:<10} {detail}"
                )
            after = batch["next_after"]
            status = client.campaign(campaign_id)["status"]

        print("== final record, fetched over HTTP ==")
        record = client.campaign(campaign_id)
        report = record["report"]
        updated = sum(
            1 for d in report["dispositions"].values() if d == "updated"
        )
        print(f"   status={record['status']} updated={updated}/6")
        assert record["status"] == "succeeded" and updated == 6

        metrics = client.metrics()
        requests = metrics["metrics"]["counters"]["gateway.requests"]
        stream = metrics["stream"]
        print(
            f"   gateway served {requests} requests; stream seq="
            f"{stream['seq']}, unaccounted={stream['unaccounted']}"
        )
        assert stream["unaccounted"] == 0
    finally:
        gateway.stop()
    print("done.")


if __name__ == "__main__":
    main()
