#!/usr/bin/env python3
"""Fleet OTA campaign: a staged rollout with a canary wave and faults.

Demonstrates the campaign engine at fleet scale: a trusted server rolls
the remote-control APP out to a 12-vehicle fleet in waves (25% canary,
then the rest), with seeded fault injection dooming one vehicle's
installation.  The canary gate passes, the single failure stays below
the health threshold, the doomed vehicle exhausts its retry budget and
is flagged for the workshop — and the whole run is deterministic.

Flip ``max_failure_rate`` down to 0.05 to watch the same failure breach
the gate and roll the wave back instead.

The campaign runs through the server's fleet control plane: it is
persisted as a ``cmp-NNNN`` database entity, and the closing portal
queries show the record and a FleetSelector sweep over the fleet.

Run:  python examples/fleet_ota_campaign.py
"""

from repro import Disposition, FaultPlan, FleetSelector, build_fleet
from repro.baselines import ReflashParameters, ota_reflash_time_us
from repro.fes import canary_campaign
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.sim import format_time


def main() -> None:
    fleet_size = 12
    print(f"== building a fleet of {fleet_size} vehicles on one server ==")
    fleet = build_fleet(fleet_size, seed=3, regions=("eu-north", "na-east"))
    fleet.server.api.store.upload(
        make_remote_control_app(PHONE_ADDRESS)
    ).unwrap()

    print("== declaring the campaign: 25% canary wave, then the rest ==")
    spec = canary_campaign(
        "remote-control",
        fractions=(0.25, 1.0),
        max_failure_rate=0.2,   # one casualty out of nine is tolerable
        retry_budget=1,
    )
    faults = FaultPlan(seed=7, doomed_vins={"VIN-0005"})
    print("   injected fault: VIN-0005 always NACKs its installation")

    print("== running the staged rollout (event-driven, one sim) ==")
    report = fleet.run_campaign(spec, faults=faults)
    print(report.timeline())

    # The report is the contract: assert the outcome the scenario scripts.
    assert report.status == "succeeded", report.summary()
    assert report.updated == fleet_size - 1
    assert report.dispositions["VIN-0005"] is Disposition.NEEDS_WORKSHOP
    assert report.waves[0].canary and not report.waves[0].breaches
    assert report.waves[1].retries == 1  # the doomed VIN got its retry
    print("   report assertions hold: 11 updated, VIN-0005 -> workshop")

    print("== portal view: the persisted campaign + a selector query ==")
    record = fleet.api.campaigns.list().unwrap()[0]
    print(f"   campaign {record.campaign_id}: status={record.status}, "
          f"persisted report waves={len(record.report['waves'])}")
    selector = FleetSelector.region("eu-north") & FleetSelector.installed(
        "remote-control"
    )
    updated_eu = fleet.query(selector)
    print(f"   eu-north vehicles running remote-control: "
          f"{[view.vin for view in updated_eu]}")
    assert all(view.region == "eu-north" for view in updated_eu)

    print("== comparison: classical full-image reflash baseline ==")
    elapsed = report.finished_us - report.started_us
    reflash = ota_reflash_time_us(ReflashParameters()) * fleet_size
    print(f"   staged dynamic campaign (measured): {format_time(elapsed)}")
    print(f"   sequential OTA reflash of the fleet (model): "
          f"{format_time(reflash)}")
    print(f"   speedup: {reflash / max(1, elapsed):.0f}x")
    print("done.")


if __name__ == "__main__":
    main()
