#!/usr/bin/env python3
"""Fleet OTA campaign: deploy an APP to many vehicles at once.

Demonstrates the life-cycle management side of the paper at fleet
scale: a server pushes the remote-control APP to a whole fleet,
tracks per-vehicle acknowledgements, survives an incompatible vehicle
(different model, no deployment descriptor), and restores a replaced
ECU in the workshop — then compares the deployment time against the
classical full-reflash baseline.

Run:  python examples/fleet_ota_campaign.py
"""

from repro import build_fleet
from repro.baselines import ReflashParameters, ota_reflash_time_us
from repro.fes import make_example_vehicle_spec
from repro.fes.example_platform import PHONE_ADDRESS, make_remote_control_app
from repro.sim import SECOND, format_time


def main() -> None:
    fleet_size = 8
    print(f"== building a fleet of {fleet_size} vehicles on one server ==")
    fleet = build_fleet(fleet_size, seed=3)
    web = fleet.server.web
    web.upload_app(make_remote_control_app(PHONE_ADDRESS))
    fleet.boot()
    fleet.sim.run_for(1 * SECOND)
    online = len(fleet.server.pusher.connected_vins())
    print(f"   vehicles online: {online}/{fleet_size}")

    print("== odd one out: register an incompatible vehicle model ==")
    spec = make_example_vehicle_spec("VIN-ODD", fleet.server.address)
    hw, system_sw = spec.describe_for_server()
    web.register_vehicle("VIN-ODD", "exotic-model", hw, system_sw)
    web.bind_vehicle(fleet.user_id, "VIN-ODD")
    odd = web.deploy(fleet.user_id, "VIN-ODD", "remote-control")
    print(f"   deploy to VIN-ODD rejected: {not odd.ok}")
    print(f"   reason: {odd.reasons[0]}")

    print("== campaign: deploy to every compatible vehicle ==")
    campaign = fleet.deploy_everywhere("remote-control")
    print(f"   accepted: {sum(r.ok for r in campaign)}/{fleet_size}")
    elapsed = campaign.wait(30 * SECOND)
    print(f"   all {campaign.active_count()} vehicles ACTIVE "
          f"after {format_time(elapsed)}")

    print("== workshop: ECU2 of vehicle 0 is replaced ==")
    victim = fleet.vehicles[0]
    pirte2 = victim.pirte_of("swc2")
    pirte2.uninstall("OP")  # the new ECU comes empty
    result = web.restore(victim.vin, "ECU2")
    fleet.sim.run_for(5 * SECOND)
    status = web.installation_status(victim.vin, "remote-control")
    print(f"   restore pushed {result.pushed_messages} package(s); "
          f"status: {status.value}")
    print(f"   OP re-installed: {'OP' in pirte2.plugins}")

    print("== comparison: classical full-image reflash baseline ==")
    params = ReflashParameters()
    reflash = ota_reflash_time_us(params)
    print(f"   dynamic plug-in deploy (measured): {format_time(elapsed)}")
    print(f"   full OTA reflash of one ECU (model): {format_time(reflash)}")
    print(f"   speedup: {reflash / max(1, elapsed):.0f}x")
    print("done.")


if __name__ == "__main__":
    main()
