#!/usr/bin/env python3
"""Third-party plug-in development workflow, end to end.

The paper's third motivation is "open innovation where an ecosystem of
third party developers can develop new services".  This example walks
the developer loop: write a plug-in in the bundled assembly language,
unit-test it on the :class:`PluginTestBench` (no vehicle needed),
inspect the binary with the disassembler, upload it as an APP, and
deploy it to a vehicle — where it behaves exactly as on the bench.

The plug-in is a *cruise filter*: it receives raw speed commands and
rate-limits them (max +/-5 per message) before forwarding to the
drivetrain, keeping state in VM memory across activations.

Run:  python examples/plugin_development.py
"""

from repro import build_example_platform
from repro.api import AppBuilder, App
from repro.core.testbench import PluginTestBench
from repro.sim import SECOND
from repro.vm.disasm import disassemble
from repro.vm.loader import compile_plugin
from repro.vm.verify import VerifyLimits, verify_binary

CRUISE_FILTER_SOURCE = """
; cruise filter: rate-limit speed commands to +/-5 per step.
; memory: cell 0 = current output value
.entry on_init
    PUSH 0
    STORE 0
    HALT
.entry on_message
    ; stack: [port, value] -- value on top
    STORE 1          ; requested speed
    POP              ; discard port (single input)
    LOAD 1
    LOAD 0
    SUB              ; delta = requested - current
    DUP
    PUSH 5
    GT
    JNZ clamp_up     ; delta > 5
    DUP
    PUSH -5
    LT
    JNZ clamp_down   ; delta < -5
    ; small delta: accept it
    LOAD 0
    ADD
    STORE 0
    JMP emit
clamp_up:
    POP
    LOAD 0
    PUSH 5
    ADD
    STORE 0
    JMP emit
clamp_down:
    POP
    LOAD 0
    PUSH 5
    SUB
    STORE 0
emit:
    LOAD 0
    WRPORT 1
    HALT
"""


def bench_phase() -> bytes:
    print("== 1. unit-test the plug-in on the bench (no vehicle) ==")
    bench = PluginTestBench.from_source(CRUISE_FILTER_SOURCE, mem_hint=8)
    bench.init()
    for requested in (3, 20, 20, 20, -10):
        bench.message(port=0, value=requested)
    outputs = bench.report.writes_on(1)
    print(f"   requested: [3, 20, 20, 20, -10]")
    print(f"   filtered:  {outputs}")
    assert outputs == [3, 8, 13, 18, 13], outputs
    print(f"   activations: {bench.report.activations}, "
          f"traps: {bench.report.traps}, fuel: {bench.report.fuel_used}")

    print("== 2. inspect the shipped binary ==")
    binary = compile_plugin(CRUISE_FILTER_SOURCE, mem_hint=8)
    listing = disassemble(binary)
    head = "\n".join(listing.splitlines()[:8])
    print(f"   container: {binary.size} bytes, "
          f"entries: {sorted(binary.entries)}")
    print("   " + head.replace("\n", "\n   "))
    print("   ...")

    print("== 2b. static verification (what the upload gate runs) ==")
    report = verify_binary(binary, VerifyLimits(num_ports=2))
    print(f"   {report.summary()}")
    for entry, bound in sorted(report.entry_fuel.items()):
        print(f"   worst-case fuel {entry}: {bound}")
    assert report.clean, report.render(binary)
    return binary.raw


def make_cruise_app(binary_raw: bytes) -> App:
    app = AppBuilder(None, "cruise-filter", "model-car-rpi")
    app.plugin("CRUISE", binary=binary_raw, on="swc2",
               ports=("speed_in", "speed_out"))
    app.unconnected("CRUISE", "speed_in")
    app.virtual("CRUISE", "speed_out", "V5")
    app.external("111.22.33.44:56789", "CruiseSpeed", "CRUISE", "speed_in")
    return app.to_app()


def deploy_phase(binary_raw: bytes) -> None:
    print("== 3. upload the APP and deploy it to a real vehicle ==")
    platform = build_example_platform(seed=5)
    platform.server.api.store.upload(make_cruise_app(binary_raw)).unwrap()
    platform.boot()
    platform.run(1 * SECOND)
    deployment = platform.deploy("cruise-filter")
    assert deployment.ok, deployment.reasons(platform.vehicle().vin)
    deployment.wait(10 * SECOND)
    print("   installed:",
          "CRUISE" in platform.vehicle().pirte_of("swc2").plugins)

    print("== 4. same behaviour in the vehicle as on the bench ==")
    for requested in (3, 20, 20, 20, -10):
        platform.phone().send("CruiseSpeed", requested)
        platform.run(int(0.3 * SECOND))
    platform.run(1 * SECOND)
    actuated = platform.actuator_state().get("speed")
    print(f"   drivetrain received: {actuated}")
    assert actuated == [3, 8, 13, 18, 13], actuated
    print("   bench == vehicle: reproducible plug-in behaviour")
    print("done.")


def main() -> None:
    raw = bench_phase()
    deploy_phase(raw)


if __name__ == "__main__":
    main()
