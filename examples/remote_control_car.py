#!/usr/bin/env python3
"""The paper's Figure 3 demonstrator, step by step, with a live trace.

Reconstructs Sec. 4 of the paper in detail: the two-RPi model car, the
COM and OP plug-ins, the PLC/ECC contexts exactly as printed, and a
drive session where steering commands flow

    phone --wifi--> COM (ECM, ECU1) --type II over CAN--> OP (ECU2)
          --type III--> WheelsReq/SpeedReq --> actuators.

Run:  python examples/remote_control_car.py
"""

from repro import build_example_platform
from repro.sim import MS, SECOND, format_time


def print_signal_chain(platform) -> None:
    """Show the end-to-end latency of each command from the trace."""
    tracer = platform.tracer
    sends = [
        p for p in tracer.select("net", "send")
        if "ext" in p.data.get("channel", "")
    ]
    writes = tracer.select("rte", "write", ecu="ECU2")
    print(f"   external sends seen on the wireless link: {len(sends)}")
    print(f"   RTE writes on ECU2 (type III actuator writes): {len(writes)}")


def main() -> None:
    platform = build_example_platform(seed=7)
    vehicle = platform.vehicle()

    print("== the platform (paper Fig. 3) ==")
    print(f"   ECUs: {vehicle.spec.ecus}")
    print(f"   ECM SW-C '{vehicle.spec.ecm.instance_name}' on ECU1 (PIRTE1)")
    print(f"   plug-in SW-C 'swc2' on ECU2 (PIRTE2)")
    print("   virtual ports on swc2: V2/V3 (type II relay), V4=WheelsReq,")
    print("   V5=SpeedReq, V6=SpeedProv (provisioned, unused — as in the paper)")

    platform.boot()
    platform.run(1 * SECOND)

    print("== install: server generates contexts and pushes packages ==")
    deployment = platform.deploy("remote-control")
    assert deployment.ok, deployment.reasons(vehicle.vin)
    elapsed = deployment.wait(10 * SECOND)
    print(f"   both plug-ins ACTIVE after {format_time(elapsed)}")

    ecm = vehicle.ecm_pirte
    pirte2 = vehicle.pirte_of("swc2")
    com = ecm.plugin("COM")
    op = pirte2.plugin("OP")
    print(f"   COM PIC: {[(e.name, e.port_id) for e in com.pic.entries]}")
    print(f"   COM PLC: {com.plc.describe()}   <- paper: {{P0-, P1-, P2-V0.P0, P3-V0.P1}}")
    print(f"   OP  PIC: {[(e.name, e.port_id) for e in op.pic.entries]}")
    print(f"   OP  PLC: {op.plc.describe()}")
    print(f"   ECC entries registered in PIRTE1: "
          f"{[(e.message_name, e.recipient_ecu, e.port_id) for e in ecm.ecc_entries]}")

    print("== drive session: a sweep of steering angles plus speed steps ==")
    t0 = platform.sim.now
    for step, angle in enumerate(range(-40, 41, 10)):
        platform.phone().send("Wheels", angle)
        platform.phone().send("Speed", 20 + step * 5)
        platform.run(200 * MS)
    platform.run(1 * SECOND)

    state = platform.actuator_state()
    print(f"   wheel angles actuated: {state.get('wheels')}")
    print(f"   speed requests actuated: {state.get('speed')}")
    print(f"   session duration: {format_time(platform.sim.now - t0)}")

    print("== plumbing statistics ==")
    bus = vehicle.system.bus
    print(f"   CAN frames on the in-vehicle bus: {bus.frames_transferred}")
    print(f"   COM VM activations: {com.vm.activations}, "
          f"fuel used: {com.vm.total_fuel_used}")
    print(f"   OP  VM activations: {op.vm.activations}, "
          f"fuel used: {op.vm.total_fuel_used}")
    print(f"   messages routed by PIRTE1: {ecm.messages_routed}, "
          f"PIRTE2: {pirte2.messages_routed}")
    print_signal_chain(platform)
    print("done.")


if __name__ == "__main__":
    main()
